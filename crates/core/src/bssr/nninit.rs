//! NNinit — the nearest-neighbour initial search (Optimisation 1, §5.3.1,
//! Algorithm 3).
//!
//! Before the branch-and-bound search starts, the upper bound must be
//! initialised. NNinit greedily chains nearest-neighbour searches: from the
//! start it finds the closest PoI *perfectly* matching position 1, from
//! there the closest perfect match for position 2, and so on. On the final
//! leg every *semantically* matching PoI settled before the perfect one
//! also completes a sequenced route, so NNinit usually seeds the skyline
//! set with several routes — one of them with semantic score 0 — at the
//! cost of |S_q| plain Dijkstra searches.

use std::time::Instant;

use skysr_graph::{dijkstra_with, Cost, DijkstraWorkspace, Settle, VertexId};

use crate::context::QueryContext;
use crate::dominance::SkylineSet;
use crate::prepared::PreparedQuery;
use crate::route::PartialRoute;
use crate::stats::QueryStats;

/// Outcome of the initial search.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct InitOutcome {
    /// Number of sequenced routes found (Table 7's "# of routes").
    pub routes_found: usize,
    /// Whether a perfectly matching route (semantic 0) was found.
    pub perfect_found: bool,
}

/// Runs NNinit, inserting found sequenced routes into `skyline`.
pub fn nninit(
    ctx: &QueryContext<'_>,
    pq: &PreparedQuery,
    ws: &mut DijkstraWorkspace,
    skyline: &mut SkylineSet,
    stats: &mut QueryStats,
) -> InitOutcome {
    let t0 = Instant::now();
    let k = pq.len();
    let mut route = PartialRoute::empty();
    let mut source = pq.start;
    let mut outcome = InitOutcome::default();
    let mut best_semantic_route: Option<(Cost, f64)> = None;
    let mut perfect_route_len: Option<Cost> = None;

    for i in 0..k {
        let position = &pq.positions[i];
        let last_leg = i + 1 == k;
        let mut found: Option<(VertexId, Cost)> = None;
        let search_stats = dijkstra_with(ctx.graph, ws, &[(source, Cost::ZERO)], |u, d| {
            let in_route = !position.allow_revisit && route.contains(u);
            if last_leg && !in_route {
                let sim = position.sim_of(ctx, u);
                if sim > 0.0 {
                    let complete = route.extend(u, d, sim);
                    outcome.routes_found += 1;
                    let (len, sem) = (complete.length(), complete.semantic());
                    if sem > 0.0 && best_semantic_route.is_none_or(|(_, bs)| sem > bs) {
                        best_semantic_route = Some((len, sem));
                    }
                    skyline.update(complete.into_skyline_route());
                    if sim >= 1.0 {
                        found = Some((u, d));
                        return Settle::Stop;
                    }
                }
                return Settle::Continue;
            }
            if !in_route && position.is_perfect(ctx, u) {
                found = Some((u, d));
                return Settle::Stop;
            }
            Settle::Continue
        });
        stats.search.merge(&search_stats);
        match found {
            Some((u, d)) => {
                route = route.extend(u, d, 1.0);
                source = u;
            }
            // No reachable perfect match for this position: the greedy
            // chain cannot continue. Any semantic routes already inserted
            // (last leg) stay; BSSR remains correct with whatever upper
            // bound we managed to find.
            None => break,
        }
    }

    if route.len() == k {
        outcome.perfect_found = true;
        perfect_route_len = Some(route.length());
    }
    stats.init_routes = outcome.routes_found;
    stats.init_time = t0.elapsed();
    stats.init_length_ratio = match (best_semantic_route, perfect_route_len) {
        (Some((len, _)), Some(plen)) if plen.get() > 0.0 => Some(len.get() / plen.get()),
        _ => None,
    };
    outcome
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::paper_example::PaperExample;
    use skysr_graph::VertexId;

    fn run_fixture() -> (SkylineSet, QueryStats, InitOutcome) {
        let ex = PaperExample::new();
        let ctx = ex.context();
        let pq = ex.prepared(&ctx);
        let mut ws = DijkstraWorkspace::new(ctx.graph.num_vertices());
        let mut skyline = SkylineSet::new();
        let mut stats = QueryStats::default();
        let outcome = nninit(&ctx, &pq, &mut ws, &mut skyline, &mut stats);
        (skyline, stats, outcome)
    }

    #[test]
    fn reproduces_example_5_6() {
        // NNinit must find exactly ⟨p2, p5, p7⟩ (12, 0.5) and
        // ⟨p2, p5, p8⟩ (15, 0) — the paper's Example 5.6.
        let (skyline, _, outcome) = run_fixture();
        assert!(outcome.perfect_found);
        assert_eq!(outcome.routes_found, 2);
        let mut routes = skyline.routes().to_vec();
        routes.sort_by_key(|a| a.length);
        assert_eq!(routes.len(), 2);
        assert_eq!(routes[0].pois, vec![VertexId(2), VertexId(5), VertexId(7)]);
        assert_eq!(routes[0].length, Cost::new(12.0));
        assert_eq!(routes[0].semantic, 0.5);
        assert_eq!(routes[1].pois, vec![VertexId(2), VertexId(5), VertexId(8)]);
        assert_eq!(routes[1].length, Cost::new(15.0));
        assert_eq!(routes[1].semantic, 0.0);
    }

    #[test]
    fn stats_recorded() {
        let (_, stats, _) = run_fixture();
        assert_eq!(stats.init_routes, 2);
        // Ratio: 12 / 15 = 0.8 — same regime as Table 7 (0.7–0.9).
        assert_eq!(stats.init_length_ratio, Some(0.8));
        assert!(stats.search.settled > 0);
    }

    #[test]
    fn single_position_query_collects_semantics() {
        let ex = PaperExample::new();
        let ctx = ex.context();
        let gift = ex.forest.by_name("Gift Shop").unwrap();
        let q = crate::query::SkySrQuery::new(ex.vq, [gift]);
        let pq = crate::prepared::PreparedQuery::prepare(&ctx, &q).unwrap();
        let mut ws = DijkstraWorkspace::new(ctx.graph.num_vertices());
        let mut skyline = SkylineSet::new();
        let mut stats = QueryStats::default();
        let outcome = nninit(&ctx, &pq, &mut ws, &mut skyline, &mut stats);
        assert!(outcome.perfect_found);
        // The nearest gift shop (p8 at 11) settles before any hobby shop,
        // so exactly one route is found and it is perfect.
        assert_eq!(outcome.routes_found, 1);
        assert!(skyline.routes().iter().any(|r| r.semantic == 0.0));
    }

    #[test]
    fn unreachable_perfect_match_degrades_gracefully() {
        // A forest/table where position 0 has semantic but no perfect
        // matches: NNinit finds no perfect chain but must not panic.
        use skysr_category::ForestBuilder;
        use skysr_graph::GraphBuilder;
        let mut fb = ForestBuilder::new();
        let food = fb.add_root("Food");
        let asian = fb.add_child(food, "Asian");
        let italian = fb.add_child(food, "Italian");
        let forest = fb.build();
        let mut gb = GraphBuilder::new();
        let v0 = gb.add_vertex();
        let v1 = gb.add_vertex();
        gb.add_edge(v0, v1, 1.0);
        let graph = gb.build();
        let mut pois = crate::poi::PoiTable::new(2);
        pois.add_poi(v1, italian); // only a semantic match for "Asian"
        pois.finalize(&forest);
        let ctx = QueryContext::new(&graph, &forest, &pois);
        let q = crate::query::SkySrQuery::new(v0, [asian]);
        let pq = crate::prepared::PreparedQuery::prepare(&ctx, &q).unwrap();
        let mut ws = DijkstraWorkspace::new(2);
        let mut skyline = SkylineSet::new();
        let mut stats = QueryStats::default();
        let outcome = nninit(&ctx, &pq, &mut ws, &mut skyline, &mut stats);
        assert!(!outcome.perfect_found);
        // The semantic route ⟨v1⟩ was still found on the (only) last leg.
        assert_eq!(outcome.routes_found, 1);
        assert_eq!(skyline.len(), 1);
        assert_eq!(stats.init_length_ratio, None);
    }
}
