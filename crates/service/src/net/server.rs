//! The `skysr-d` event loop: one poll thread, nonblocking sockets.
//!
//! The runtime has no async stack (std-only, by constraint), so the
//! daemon is a classic readiness loop: a nonblocking
//! [`TcpListener`] plus per-connection nonblocking [`TcpStream`]s, all
//! driven by a single thread that accepts, reads, decodes, dispatches,
//! pumps and flushes in rounds. The *engine* still runs on the
//! [`Service`]'s own worker pool — the loop never blocks on a search:
//! submissions go through the service's non-blocking `try_submit` (a full
//! queue parks the
//! frame and the loop keeps turning — backpressure reaches the client as
//! an unread socket), and answers come back by polling each in-flight
//! query's [`Ticket::try_wait`] and its streaming progress channel.

use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{Receiver, Sender};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use skysr_core::error::QueryError;
use skysr_core::route::SkylineRoute;

use super::wire::{
    DatasetFingerprint, Frame, FrameReader, ProtocolError, FEATURE_MULTI_TENANT, FEATURE_STREAMING,
    MAX_FRAME, PROTOCOL_V1, PROTOCOL_VERSION,
};
use crate::service::{QueryRequest, QueryService, Service, Ticket};
use crate::shard::{RegionInfo, Router};

/// What the event loop needs from the engine behind it, beyond
/// [`QueryService`]: the non-blocking submission path its readiness model
/// depends on. Implemented by the single-shard [`Service`] and the
/// multi-tenant [`Router`], so one daemon binary serves either.
pub trait ServeBackend: QueryService + 'static {
    /// Non-blocking submit: `Err` hands the request back when the
    /// submission queue is full right now (the loop parks it and keeps
    /// turning); an admission-gate shed or a mis-addressed region is an
    /// `Ok` ticket already resolved to the typed failure. `submitted` is
    /// the instant the request *first* arrived, so a parked-and-retried
    /// request keeps its original deadline clock.
    fn try_submit(
        &self,
        request: QueryRequest,
        progress: Option<Sender<SkylineRoute>>,
        submitted: Instant,
    ) -> Result<Ticket, QueryRequest>;

    /// Counts a request shed while parked (queue full past its deadline)
    /// against the owning shard's metrics.
    fn note_shed_parked(&self, request: &QueryRequest);
}

impl ServeBackend for Service {
    fn try_submit(
        &self,
        request: QueryRequest,
        progress: Option<Sender<SkylineRoute>>,
        submitted: Instant,
    ) -> Result<Ticket, QueryRequest> {
        Service::try_submit(self, request, progress, submitted)
    }

    fn note_shed_parked(&self, _request: &QueryRequest) {
        Service::note_shed_parked(self);
    }
}

impl ServeBackend for Router {
    fn try_submit(
        &self,
        request: QueryRequest,
        progress: Option<Sender<SkylineRoute>>,
        submitted: Instant,
    ) -> Result<Ticket, QueryRequest> {
        match self.dispatch_request(request) {
            Ok((service, request)) => Service::try_submit(&service, request, progress, submitted),
            Err(err) => Ok(self.resolved_error_ticket(err)),
        }
    }

    fn note_shed_parked(&self, request: &QueryRequest) {
        // The parked request was already routable (it parked on a shard's
        // full queue), so resolve charges the owning shard; an unroutable
        // one was never parked.
        if let Ok(region) = self.resolve(request) {
            if let Some(service) = self.shard(region) {
                Service::note_shed_parked(service);
            }
        }
    }
}

/// Tuning knobs for [`Server`].
#[derive(Clone, Copy, Debug)]
pub struct ServerConfig {
    /// Largest accepted frame (see [`MAX_FRAME`]).
    pub max_frame: usize,
    /// Per-connection write-buffer size above which the loop stops
    /// *reading* from that connection — backpressure for a client that
    /// pipelines submissions faster than it drains answers.
    pub write_buf_cap: usize,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig { max_frame: MAX_FRAME, write_buf_cap: 4 << 20 }
    }
}

/// A running daemon: the listener plus its poll thread.
///
/// The server holds an `Arc` of its backend — the single-shard
/// [`Service`] or the multi-tenant [`Router`] — and answers any number
/// of concurrent connections against it. It stops either cooperatively
/// ([`Server::stop`], backend left running) or protocol-driven (a client
/// sends [`Frame::Shutdown`]: the loop drains every in-flight query,
/// shuts the backend down, answers with the final
/// [`Frame::MetricsRep`] and exits).
pub struct Server {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

impl Server {
    /// Binds `addr` (e.g. `"127.0.0.1:0"` for an ephemeral port) and
    /// spawns the poll thread serving `backend` — an `Arc<Service>`
    /// (single shard) or `Arc<Router>` (multi-tenant).
    pub fn spawn<A: ToSocketAddrs, B: ServeBackend>(
        addr: A,
        backend: Arc<B>,
        config: ServerConfig,
    ) -> std::io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        // The registry (and the default shard's fingerprint inside it) is
        // captured once at spawn, like the v1 fingerprint was: the
        // handshake advertises the epoch the daemon *started* serving.
        let registry = backend.regions();
        let fingerprint = registry
            .first()
            .map(|info| info.fingerprint)
            .expect("a serve backend advertises at least one region");
        let mut loop_state = EventLoop {
            listener,
            service: backend as Arc<dyn ServeBackend>,
            registry,
            fingerprint,
            config,
            conns: Vec::new(),
            draining: false,
            stop: Arc::clone(&stop),
        };
        let handle = std::thread::Builder::new()
            .name("skysr-d".into())
            .spawn(move || loop_state.run())
            .expect("spawn server thread");
        Ok(Server { addr, stop, handle: Some(handle) })
    }

    /// The bound address (resolves the ephemeral port of `:0` binds).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Asks the poll thread to exit after its current round (the service
    /// itself is left running) and waits for it.
    pub fn stop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        self.join();
    }

    /// Waits for the poll thread to exit — either via [`Server::stop`] or
    /// a client's [`Frame::Shutdown`].
    pub fn join(&mut self) {
        if let Some(handle) = self.handle.take() {
            if handle.join().is_err() {
                panic!("skysr-d poll thread panicked");
            }
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

/// One query in flight on behalf of a connection.
struct Inflight {
    /// The *client's* correlation id, echoed on every answer frame.
    id: u64,
    ticket: Ticket,
    progress: Option<Receiver<SkylineRoute>>,
}

/// Per-connection state.
struct Conn {
    stream: TcpStream,
    reader: FrameReader,
    /// Pending output; `out_pos` marks how much is already written.
    out: Vec<u8>,
    out_pos: usize,
    /// Handshake seen.
    greeted: bool,
    inflight: Vec<Inflight>,
    /// A submission the bounded queue rejected, retried every round
    /// (while parked, no further frames are read from this connection).
    /// Carries the instant the submission *first* arrived, so a parked
    /// request's deadline clock keeps running — the per-connection
    /// overload gate sheds it with a typed [`Frame::QueryFailed`] once
    /// the deadline lapses instead of retrying forever.
    parked: Option<(u64, bool, Instant, QueryRequest)>,
    /// Close once the write buffer drains (set after a `Fault`).
    close_after_flush: bool,
    dead: bool,
}

impl Conn {
    fn new(stream: TcpStream, max_frame: usize) -> Conn {
        Conn {
            stream,
            reader: FrameReader::new(max_frame),
            out: Vec::new(),
            out_pos: 0,
            greeted: false,
            inflight: Vec::new(),
            parked: None,
            close_after_flush: false,
            dead: false,
        }
    }

    fn queue_frame(&mut self, frame: &Frame) {
        self.out.extend_from_slice(&frame.to_bytes());
    }

    fn buffered(&self) -> usize {
        self.out.len() - self.out_pos
    }

    /// Queues a `Fault`, abandons all in-flight work and schedules the
    /// connection for close-after-flush.
    fn fault(&mut self, message: String) {
        self.queue_frame(&Frame::Fault { message });
        self.inflight.clear();
        self.parked = None;
        self.close_after_flush = true;
    }
}

struct EventLoop {
    listener: TcpListener,
    service: Arc<dyn ServeBackend>,
    /// The registry advertised to v2 clients, captured at spawn.
    registry: Vec<RegionInfo>,
    /// The default shard's fingerprint — the fixed `Welcome` field every
    /// client (v1 or v2) decodes.
    fingerprint: DatasetFingerprint,
    config: ServerConfig,
    conns: Vec<Conn>,
    /// A client asked for shutdown: stop accepting, drain in-flight work,
    /// then stop the service. At most one drain at a time; later
    /// `Shutdown` frames get a `Fault`.
    draining: bool,
    stop: Arc<AtomicBool>,
}

impl EventLoop {
    fn run(&mut self) {
        let mut drain_conn: Option<usize> = None;
        loop {
            if self.stop.load(Ordering::Relaxed) {
                return;
            }
            let mut busy = false;

            // Accept — suspended once a shutdown drain started.
            if !self.draining {
                loop {
                    match self.listener.accept() {
                        Ok((stream, _)) => {
                            let _ = stream.set_nodelay(true);
                            if stream.set_nonblocking(true).is_ok() {
                                self.conns.push(Conn::new(stream, self.config.max_frame));
                                busy = true;
                            }
                        }
                        Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                        Err(_) => break,
                    }
                }
            }

            // Read + dispatch, pump, flush each connection.
            for i in 0..self.conns.len() {
                let mut requested_drain = false;
                {
                    let draining = self.draining;
                    let conn = &mut self.conns[i];
                    busy |= read_into(conn, self.config.write_buf_cap);
                    busy |= dispatch(
                        conn,
                        &self.service,
                        self.fingerprint,
                        &self.registry,
                        draining,
                        &mut requested_drain,
                    );
                    busy |= pump(conn);
                    busy |= flush(conn);
                }
                if requested_drain && !self.draining {
                    self.draining = true;
                    drain_conn = Some(i);
                }
            }

            // Retry parked submissions (queue may have drained). A parked
            // request whose deadline lapsed while the queue stayed full is
            // shed right here with the typed overload failure — honest
            // per-connection admission, not an unbounded retry.
            for conn in &mut self.conns {
                if let Some((id, streaming, submitted, request)) = conn.parked.take() {
                    if request.options.deadline.is_some_and(|d| submitted.elapsed() >= d) {
                        self.service.note_shed_parked(&request);
                        conn.queue_frame(&Frame::QueryFailed { id, error: QueryError::Overloaded });
                        busy = true;
                        continue;
                    }
                    match try_submit(&self.service, id, streaming, submitted, request) {
                        Ok(inflight) => {
                            conn.inflight.push(inflight);
                            busy = true;
                        }
                        Err(parked) => conn.parked = Some(parked),
                    }
                }
            }

            // Drop finished/broken connections, tracking the drain conn
            // across removals.
            let mut j = 0usize;
            self.conns.retain(|conn| {
                let keep = !(conn.dead || conn.close_after_flush && conn.buffered() == 0);
                if !keep {
                    if drain_conn == Some(j) {
                        drain_conn = None;
                    } else if let Some(d) = drain_conn {
                        if j < d {
                            drain_conn = Some(d - 1);
                        }
                    }
                }
                j += 1;
                keep
            });

            // A requested shutdown completes once nothing is in flight
            // anywhere: stop the service, answer with the final metrics,
            // flush, exit.
            if self.draining
                && self.conns.iter().all(|c| c.inflight.is_empty() && c.parked.is_none())
            {
                let final_metrics = self.service.shutdown();
                if let Some(d) = drain_conn {
                    self.conns[d].queue_frame(&Frame::MetricsRep(Box::new(final_metrics)));
                }
                for _ in 0..10_000 {
                    let mut pending = false;
                    for conn in &mut self.conns {
                        flush(conn);
                        pending |= !conn.dead && conn.buffered() > 0;
                    }
                    if !pending {
                        break;
                    }
                    std::thread::sleep(Duration::from_micros(200));
                }
                return;
            }

            if !busy {
                std::thread::sleep(Duration::from_micros(300));
            }
        }
    }
}

/// Reads available bytes into the connection's frame decoder. Skipped
/// while a submission is parked or the write buffer is over the cap —
/// that is how engine backpressure propagates to the socket.
fn read_into(conn: &mut Conn, write_buf_cap: usize) -> bool {
    if conn.dead || conn.close_after_flush || conn.parked.is_some() {
        return false;
    }
    if conn.buffered() > write_buf_cap {
        return false;
    }
    let mut busy = false;
    let mut chunk = [0u8; 16 * 1024];
    // Bounded rounds per tick so one firehose connection cannot starve
    // the rest.
    for _ in 0..4 {
        match conn.stream.read(&mut chunk) {
            Ok(0) => {
                conn.dead = true;
                return busy;
            }
            Ok(n) => {
                conn.reader.extend(&chunk[..n]);
                busy = true;
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == ErrorKind::Interrupted => continue,
            Err(_) => {
                conn.dead = true;
                return busy;
            }
        }
    }
    busy
}

/// Decodes and handles every complete frame buffered on the connection.
fn dispatch(
    conn: &mut Conn,
    service: &Arc<dyn ServeBackend>,
    fingerprint: DatasetFingerprint,
    registry: &[RegionInfo],
    draining: bool,
    requested_drain: &mut bool,
) -> bool {
    if conn.dead || conn.close_after_flush {
        return false;
    }
    let mut busy = false;
    loop {
        if conn.parked.is_some() {
            break;
        }
        let frame = match conn.reader.next_frame() {
            Ok(Some(frame)) => frame,
            Ok(None) => break,
            Err(e) => {
                conn.fault(e.to_string());
                return true;
            }
        };
        busy = true;
        match frame {
            Frame::Hello { version, features: _ } => {
                match version {
                    // A v1 client is served, not rejected: it gets the
                    // exact v1 Welcome shape (no registry bytes — a v1
                    // decoder treats trailing bytes as garbage) and its
                    // region-less submissions route to the default shard.
                    PROTOCOL_V1 => {
                        conn.queue_frame(&Frame::Welcome {
                            version: PROTOCOL_V1,
                            features: FEATURE_STREAMING,
                            fingerprint,
                            registry: Vec::new(),
                        });
                        conn.greeted = true;
                    }
                    PROTOCOL_VERSION => {
                        conn.queue_frame(&Frame::Welcome {
                            version: PROTOCOL_VERSION,
                            features: FEATURE_STREAMING | FEATURE_MULTI_TENANT,
                            fingerprint,
                            registry: registry.to_vec(),
                        });
                        conn.greeted = true;
                    }
                    // Anything else: answer with our identity either way
                    // — a mismatched client needs the Welcome to diagnose
                    // — then hang up.
                    _ => {
                        conn.queue_frame(&Frame::Welcome {
                            version: PROTOCOL_VERSION,
                            features: FEATURE_STREAMING | FEATURE_MULTI_TENANT,
                            fingerprint,
                            registry: registry.to_vec(),
                        });
                        conn.close_after_flush = true;
                    }
                }
            }
            Frame::Submit { id, streaming, request } => {
                if !conn.greeted {
                    conn.fault(ProtocolError::UnexpectedFrame("Submit before Hello").to_string());
                    return true;
                }
                if draining {
                    conn.fault("server is shutting down".to_string());
                    return true;
                }
                match try_submit(service, id, streaming, Instant::now(), request) {
                    Ok(inflight) => conn.inflight.push(inflight),
                    Err(parked) => conn.parked = Some(parked),
                }
            }
            Frame::MetricsReq => {
                conn.queue_frame(&Frame::MetricsRep(Box::new(service.metrics())));
            }
            Frame::PublishWeights(deltas) => {
                let epoch = service.publish_weights(&deltas);
                conn.queue_frame(&Frame::WeightsPublished { epoch });
            }
            Frame::Shutdown => {
                if !conn.greeted {
                    conn.fault(ProtocolError::UnexpectedFrame("Shutdown before Hello").to_string());
                    return true;
                }
                if draining || *requested_drain {
                    conn.fault("shutdown already in progress".to_string());
                    return true;
                }
                *requested_drain = true;
            }
            Frame::Welcome { .. }
            | Frame::Progress { .. }
            | Frame::Final { .. }
            | Frame::QueryFailed { .. }
            | Frame::MetricsRep(_)
            | Frame::WeightsPublished { .. }
            | Frame::Fault { .. } => {
                conn.fault(
                    ProtocolError::UnexpectedFrame("server-to-client frame from client")
                        .to_string(),
                );
                return true;
            }
        }
    }
    busy
}

fn try_submit(
    service: &Arc<dyn ServeBackend>,
    id: u64,
    streaming: bool,
    submitted: Instant,
    request: QueryRequest,
) -> Result<Inflight, (u64, bool, Instant, QueryRequest)> {
    let (progress_tx, progress_rx) = if streaming {
        let (tx, rx) = std::sync::mpsc::channel();
        (Some(tx), Some(rx))
    } else {
        (None, None)
    };
    match service.try_submit(request, progress_tx, submitted) {
        Ok(ticket) => Ok(Inflight { id, ticket, progress: progress_rx }),
        Err(request) => Err((id, streaming, submitted, request)),
    }
}

/// Moves completed work onto the wire: provisional points from streaming
/// searches as they are proven, final answers as tickets resolve.
fn pump(conn: &mut Conn) -> bool {
    if conn.dead || conn.close_after_flush {
        return false;
    }
    let mut busy = false;
    let mut frames: Vec<Frame> = Vec::new();
    conn.inflight.retain_mut(|inflight| {
        if let Some(progress) = &inflight.progress {
            while let Ok(route) = progress.try_recv() {
                frames.push(Frame::Progress { id: inflight.id, route });
            }
        }
        match inflight.ticket.try_wait() {
            None => true,
            Some(outcome) => {
                // The worker sends every progress point before it replies,
                // so at this point the channel already holds them all —
                // drain once more to keep Progress-before-Final ordering.
                if let Some(progress) = &inflight.progress {
                    while let Ok(route) = progress.try_recv() {
                        frames.push(Frame::Progress { id: inflight.id, route });
                    }
                }
                frames.push(match outcome {
                    Ok(response) => Frame::Final { id: inflight.id, response },
                    Err(error) => Frame::QueryFailed { id: inflight.id, error },
                });
                false
            }
        }
    });
    for frame in &frames {
        conn.queue_frame(frame);
        busy = true;
    }
    busy
}

/// Writes as much buffered output as the socket accepts.
fn flush(conn: &mut Conn) -> bool {
    if conn.dead {
        return false;
    }
    let mut busy = false;
    while conn.out_pos < conn.out.len() {
        match conn.stream.write(&conn.out[conn.out_pos..]) {
            Ok(0) => {
                conn.dead = true;
                return busy;
            }
            Ok(n) => {
                conn.out_pos += n;
                busy = true;
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == ErrorKind::Interrupted => continue,
            Err(_) => {
                conn.dead = true;
                return busy;
            }
        }
    }
    if conn.out_pos == conn.out.len() && conn.out_pos > 0 {
        conn.out.clear();
        conn.out_pos = 0;
    }
    busy
}
