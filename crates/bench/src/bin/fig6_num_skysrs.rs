//! Regenerates Figure 6: number of skyline sequenced routes per |S_q|.
fn main() {
    let cfg = skysr_bench::ExpConfig::from_env();
    let datasets = cfg.datasets();
    skysr_bench::experiments::fig6(&cfg, &datasets);
}
