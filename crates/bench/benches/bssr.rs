//! End-to-end BSSR benchmarks: the full algorithm vs its ablations on a
//! generated city, per sequence length — the Criterion companion to
//! Figure 3 / Tables 7–8.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use skysr_core::bssr::{Bssr, BssrConfig, LowerBoundMode, QueuePolicy};
use skysr_core::SkySrQuery;
use skysr_data::dataset::{Dataset, DatasetSpec, Preset};
use skysr_data::workload::WorkloadSpec;
use std::hint::black_box;

fn dataset() -> Dataset {
    DatasetSpec::preset(Preset::CalSmall).scale(0.25).seed(9).generate()
}

fn queries(d: &Dataset, k: usize) -> Vec<SkySrQuery> {
    WorkloadSpec::new(k).queries(4).seed(3).generate(d).queries
}

fn bench_bssr(c: &mut Criterion) {
    let d = dataset();
    let ctx = d.context();
    let mut group = c.benchmark_group("bssr");
    for k in [2usize, 3, 4] {
        let qs = queries(&d, k);
        let configs: [(&str, BssrConfig); 5] = [
            ("full", BssrConfig::default()),
            ("no_opt", BssrConfig::unoptimized()),
            ("no_init", BssrConfig { use_init_search: false, ..BssrConfig::default() }),
            (
                "distance_queue",
                BssrConfig { queue_policy: QueuePolicy::DistanceBased, ..BssrConfig::default() },
            ),
            ("no_bounds", BssrConfig { lower_bound: LowerBoundMode::Off, ..BssrConfig::default() }),
        ];
        for (name, cfg) in configs {
            group.bench_with_input(BenchmarkId::new(name, k), &k, |b, _| {
                let mut engine = Bssr::with_config(&ctx, cfg);
                b.iter(|| {
                    for q in &qs {
                        black_box(engine.run(q).unwrap().routes.len());
                    }
                })
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_bssr);
criterion_main!(benches);
