//! Cross-query LRU result cache.
//!
//! Keys are *canonicalized* queries: start vertex, the canonical form of
//! every sequence position, and the engine configuration the result was
//! computed under. Since PR 2, complex
//! [`Requirement`](skysr_category::Requirement) positions canonicalize too
//! (sorted/deduplicated/flattened connectives, normalized exclusion
//! chains — see [`skysr_core::CanonicalPosition`]), so *every* valid query
//! is cacheable and structurally different spellings of one requirement
//! share a single entry.
//!
//! Values are `Arc<[SkylineRoute]>`, so a hit shares the stored skyline
//! with every waiter instead of cloning route vectors under the lock.
//!
//! Counters are exact: `hits + misses` equals the number of [`get`]
//! lookups (uncacheable traffic never reaches the cache since
//! canonicalization is total; a service running with caching disabled
//! performs no lookups at all), prefix probes via [`peek`] are not
//! counted, inserting over an identical key refreshes the entry without
//! counting an eviction, and `insertions` counts stored results so CI
//! perf artifacts can cross-check `hits + coalesced + executed` against
//! completed queries.
//!
//! [`get`]: ResultCache::get
//! [`peek`]: ResultCache::peek

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use skysr_core::bssr::BssrConfig;
use skysr_core::query::CanonicalPosition;
use skysr_core::query::SkySrQuery;
use skysr_core::route::SkylineRoute;
use skysr_graph::VertexId;

/// Canonical cache key for a SkySR query under one engine configuration.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct QueryKey {
    start: VertexId,
    positions: Box<[CanonicalPosition]>,
    config: BssrConfig,
}

impl QueryKey {
    /// Canonicalizes `query`. Total: every syntactically valid query has a
    /// key (complex requirements are reduced to their canonical form).
    pub fn canonicalize(query: &SkySrQuery, config: BssrConfig) -> QueryKey {
        QueryKey {
            start: query.start,
            positions: query.canonical_positions().into_boxed_slice(),
            config,
        }
    }

    /// The key of this query's (k−1)-position prefix under the same start
    /// and configuration — the entry a warm start reuses. `None` for
    /// single-position queries.
    pub fn prefix(&self) -> Option<QueryKey> {
        (self.positions.len() >= 2).then(|| QueryKey {
            start: self.start,
            positions: self.positions[..self.positions.len() - 1].into(),
            config: self.config,
        })
    }

    /// Number of sequence positions.
    pub fn len(&self) -> usize {
        self.positions.len()
    }

    /// Whether the key has no positions (never true for keys built by
    /// [`QueryKey::canonicalize`] from a valid query).
    pub fn is_empty(&self) -> bool {
        self.positions.is_empty()
    }
}

/// Plain LRU map: `HashMap` for lookup plus an index-linked list for
/// recency order. Both operations are O(1); no allocation after the node
/// slab reaches capacity.
struct Lru<K, V> {
    map: HashMap<K, usize>,
    nodes: Vec<Node<K, V>>,
    /// Most recently used, or `NIL`.
    head: usize,
    /// Least recently used, or `NIL`.
    tail: usize,
    free: Vec<usize>,
    capacity: usize,
}

struct Node<K, V> {
    key: K,
    value: V,
    prev: usize,
    next: usize,
}

const NIL: usize = usize::MAX;

impl<K: Clone + Eq + std::hash::Hash, V: Clone> Lru<K, V> {
    fn new(capacity: usize) -> Lru<K, V> {
        assert!(capacity > 0, "LRU capacity must be positive");
        Lru {
            map: HashMap::with_capacity(capacity),
            nodes: Vec::with_capacity(capacity),
            head: NIL,
            tail: NIL,
            free: Vec::new(),
            capacity,
        }
    }

    fn unlink(&mut self, i: usize) {
        let (prev, next) = (self.nodes[i].prev, self.nodes[i].next);
        match prev {
            NIL => self.head = next,
            p => self.nodes[p].next = next,
        }
        match next {
            NIL => self.tail = prev,
            n => self.nodes[n].prev = prev,
        }
    }

    fn push_front(&mut self, i: usize) {
        self.nodes[i].prev = NIL;
        self.nodes[i].next = self.head;
        match self.head {
            NIL => self.tail = i,
            h => self.nodes[h].prev = i,
        }
        self.head = i;
    }

    /// Looks `key` up, marking it most recently used on a hit.
    fn get(&mut self, key: &K) -> Option<V> {
        let &i = self.map.get(key)?;
        if self.head != i {
            self.unlink(i);
            self.push_front(i);
        }
        Some(self.nodes[i].value.clone())
    }

    /// Inserts (or refreshes) `key`; returns `true` when an older entry
    /// was evicted to make room. Refreshing an identical key never
    /// evicts — the entry count does not grow.
    fn insert(&mut self, key: K, value: V) -> bool {
        if let Some(&i) = self.map.get(&key) {
            self.nodes[i].value = value;
            if self.head != i {
                self.unlink(i);
                self.push_front(i);
            }
            return false;
        }
        let mut evicted = false;
        if self.map.len() == self.capacity {
            let lru = self.tail;
            self.unlink(lru);
            self.map.remove(&self.nodes[lru].key);
            self.free.push(lru);
            evicted = true;
        }
        let i = match self.free.pop() {
            Some(i) => {
                self.nodes[i] = Node { key: key.clone(), value, prev: NIL, next: NIL };
                i
            }
            None => {
                self.nodes.push(Node { key: key.clone(), value, prev: NIL, next: NIL });
                self.nodes.len() - 1
            }
        };
        self.map.insert(key, i);
        self.push_front(i);
        evicted
    }

    fn len(&self) -> usize {
        self.map.len()
    }
}

/// Counter values of a [`ResultCache`] at one instant.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheCounters {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that missed.
    pub misses: u64,
    /// Results stored (first-time inserts and refreshes).
    pub insertions: u64,
    /// Entries displaced by capacity pressure. Refreshing an existing key
    /// is not an eviction.
    pub evictions: u64,
    /// Entries currently stored.
    pub len: u64,
}

impl CacheCounters {
    /// Hits over total lookups, `0.0` when nothing was looked up.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// Thread-safe LRU cache from canonicalized queries to shared skylines.
pub struct ResultCache {
    inner: Mutex<Lru<QueryKey, Arc<[SkylineRoute]>>>,
    hits: AtomicU64,
    misses: AtomicU64,
    insertions: AtomicU64,
    evictions: AtomicU64,
}

impl ResultCache {
    /// Cache holding at most `capacity` entries.
    pub fn new(capacity: usize) -> ResultCache {
        ResultCache {
            inner: Mutex::new(Lru::new(capacity)),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            insertions: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    /// Looks a canonicalized query up, counting the hit or miss.
    pub fn get(&self, key: &QueryKey) -> Option<Arc<[SkylineRoute]>> {
        let result = self.inner.lock().expect("cache poisoned").get(key);
        match result {
            Some(_) => self.hits.fetch_add(1, Ordering::Relaxed),
            None => self.misses.fetch_add(1, Ordering::Relaxed),
        };
        result
    }

    /// Looks `key` up *without* touching the hit/miss counters — used for
    /// opportunistic prefix probes (warm starts), which are not request
    /// traffic and must not distort the hit rate. A found entry is still
    /// marked recently used: reuse as a seed is a use.
    pub fn peek(&self, key: &QueryKey) -> Option<Arc<[SkylineRoute]>> {
        self.inner.lock().expect("cache poisoned").get(key)
    }

    /// Reclassifies one already-counted miss as a hit.
    ///
    /// A flight leader whose post-claim re-probe finds the answer (a
    /// racing previous leader cached it between this request's counted
    /// lookup and the flight claim — see `worker_loop`) is ultimately
    /// served from the cache. Converting its miss keeps both invariants
    /// exact: `hits + misses` equals counted lookups, and `hits` equals
    /// responses served from the cache.
    pub fn reclassify_miss_as_hit(&self) {
        self.hits.fetch_add(1, Ordering::Relaxed);
        self.misses.fetch_sub(1, Ordering::Relaxed);
    }

    /// Stores a computed skyline.
    pub fn insert(&self, key: QueryKey, routes: Arc<[SkylineRoute]>) {
        self.insertions.fetch_add(1, Ordering::Relaxed);
        if self.inner.lock().expect("cache poisoned").insert(key, routes) {
            self.evictions.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Current counter values.
    pub fn counters(&self) -> CacheCounters {
        CacheCounters {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            insertions: self.insertions.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            len: self.inner.lock().expect("cache poisoned").len() as u64,
        }
    }
}

impl std::fmt::Debug for ResultCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ResultCache").field("counters", &self.counters()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use skysr_category::{CategoryId, Requirement};
    use skysr_core::bssr::QueuePolicy;
    use skysr_core::query::PositionSpec;
    use skysr_graph::Cost;

    fn routes(n: u32) -> Arc<[SkylineRoute]> {
        vec![SkylineRoute { pois: vec![VertexId(n)], length: Cost::new(n as f64), semantic: 0.0 }]
            .into()
    }

    fn key(start: u32) -> QueryKey {
        let q = SkySrQuery::new(VertexId(start), [CategoryId(0), CategoryId(1)]);
        QueryKey::canonicalize(&q, BssrConfig::default())
    }

    #[test]
    fn requirement_queries_are_cacheable_and_spelling_insensitive() {
        let cfg = BssrConfig::default();
        let plain = SkySrQuery::new(VertexId(0), [CategoryId(0)]);
        let wrapped = SkySrQuery::with_positions(
            VertexId(0),
            [PositionSpec::Requirement(Requirement::any_of([CategoryId(0)]))],
        );
        // A requirement that reduces to one category shares the plain
        // query's entry.
        assert_eq!(QueryKey::canonicalize(&plain, cfg), QueryKey::canonicalize(&wrapped, cfg));
        // Branch order of a genuine disjunction is canonicalized away.
        let ab = SkySrQuery::with_positions(
            VertexId(0),
            [PositionSpec::Requirement(Requirement::any_of([CategoryId(0), CategoryId(1)]))],
        );
        let ba = SkySrQuery::with_positions(
            VertexId(0),
            [PositionSpec::Requirement(Requirement::any_of([CategoryId(1), CategoryId(0)]))],
        );
        assert_eq!(QueryKey::canonicalize(&ab, cfg), QueryKey::canonicalize(&ba, cfg));
        assert_ne!(QueryKey::canonicalize(&ab, cfg), QueryKey::canonicalize(&plain, cfg));
    }

    #[test]
    fn prefix_key_drops_the_last_position() {
        let cfg = BssrConfig::default();
        let q3 = SkySrQuery::new(VertexId(7), [CategoryId(0), CategoryId(1), CategoryId(2)]);
        let q2 = SkySrQuery::new(VertexId(7), [CategoryId(0), CategoryId(1)]);
        let q1 = SkySrQuery::new(VertexId(7), [CategoryId(0)]);
        let k3 = QueryKey::canonicalize(&q3, cfg);
        let k2 = k3.prefix().expect("3-position key has a prefix");
        assert_eq!(k2, QueryKey::canonicalize(&q2, cfg));
        let k1 = k2.prefix().expect("2-position key has a prefix");
        assert_eq!(k1, QueryKey::canonicalize(&q1, cfg));
        assert_eq!(k1.prefix(), None, "single-position keys have no prefix");
        assert_eq!((k3.len(), k2.len(), k1.len()), (3, 2, 1));
        assert!(!k3.is_empty());
    }

    #[test]
    fn config_distinguishes_keys() {
        let q = SkySrQuery::new(VertexId(0), [CategoryId(0)]);
        let a = QueryKey::canonicalize(&q, BssrConfig::default());
        let b = QueryKey::canonicalize(
            &q,
            BssrConfig { queue_policy: QueuePolicy::DistanceBased, ..BssrConfig::default() },
        );
        assert_ne!(a, b);
    }

    #[test]
    fn hit_miss_and_counters() {
        let cache = ResultCache::new(4);
        assert!(cache.get(&key(1)).is_none());
        cache.insert(key(1), routes(1));
        let hit = cache.get(&key(1)).expect("hit");
        assert_eq!(hit[0].pois, vec![VertexId(1)]);
        let c = cache.counters();
        assert_eq!((c.hits, c.misses, c.insertions, c.evictions, c.len), (1, 1, 1, 0, 1));
        assert!((c.hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn reclassify_converts_a_counted_miss_into_a_hit() {
        // The flight-leader re-probe path: one counted lookup missed, the
        // answer then appeared; after reclassification the request reads
        // as the cache hit it was ultimately served as.
        let cache = ResultCache::new(4);
        assert!(cache.get(&key(1)).is_none());
        cache.insert(key(1), routes(1));
        assert!(cache.peek(&key(1)).is_some());
        cache.reclassify_miss_as_hit();
        let c = cache.counters();
        assert_eq!((c.hits, c.misses), (1, 0));
        assert!((c.hit_rate() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn peek_does_not_count_a_lookup() {
        let cache = ResultCache::new(4);
        assert!(cache.peek(&key(1)).is_none());
        cache.insert(key(1), routes(1));
        assert!(cache.peek(&key(1)).is_some());
        let c = cache.counters();
        assert_eq!((c.hits, c.misses), (0, 0), "peeks are not traffic");
        // But a peek refreshes recency: after peeking 1 in a full cache,
        // the other entry is the eviction victim.
        let cache = ResultCache::new(2);
        cache.insert(key(1), routes(1));
        cache.insert(key(2), routes(2));
        assert!(cache.peek(&key(1)).is_some());
        cache.insert(key(3), routes(3));
        assert!(cache.peek(&key(2)).is_none(), "2 was evicted");
        assert!(cache.peek(&key(1)).is_some());
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let cache = ResultCache::new(2);
        cache.insert(key(1), routes(1));
        cache.insert(key(2), routes(2));
        // Touch 1, making 2 the eviction victim.
        assert!(cache.get(&key(1)).is_some());
        cache.insert(key(3), routes(3));
        assert!(cache.get(&key(2)).is_none(), "2 was evicted");
        assert!(cache.get(&key(1)).is_some());
        assert!(cache.get(&key(3)).is_some());
        assert_eq!(cache.counters().evictions, 1);
    }

    #[test]
    fn reinsert_over_identical_key_counts_no_eviction() {
        // Regression guard for the CI perf artifacts: refreshing an entry
        // (e.g. two uncoalesced workers finishing the same query) must not
        // inflate the eviction counter, even at capacity.
        let cache = ResultCache::new(2);
        cache.insert(key(1), routes(1));
        cache.insert(key(2), routes(2));
        // At capacity: re-inserting both existing keys evicts nothing.
        cache.insert(key(1), routes(10));
        cache.insert(key(2), routes(20));
        let c = cache.counters();
        assert_eq!(c.evictions, 0);
        assert_eq!(c.insertions, 4, "refreshes still count as insertions");
        assert_eq!(c.len, 2);
        assert_eq!(cache.get(&key(1)).unwrap()[0].length, Cost::new(10.0));
        // 1 was refreshed more recently... then got, so 2 is LRU now.
        cache.insert(key(3), routes(3));
        assert_eq!(cache.counters().evictions, 1);
        assert!(cache.get(&key(2)).is_none());
    }

    #[test]
    fn slab_reuse_after_many_evictions() {
        let cache = ResultCache::new(3);
        for i in 0..100 {
            cache.insert(key(i), routes(i));
        }
        let c = cache.counters();
        assert_eq!(c.len, 3);
        assert_eq!(c.evictions, 97);
        assert_eq!(c.insertions, 100);
        for i in 97..100 {
            assert!(cache.get(&key(i)).is_some(), "newest entries survive");
        }
    }
}
