//! Synthetic dataset and workload generators for the SkySR experiments.
//!
//! The paper evaluates on OpenStreetMap road networks (Tokyo, New York
//! City) with Foursquare PoIs, and on the public California dataset
//! (Table 5). Those exact inputs are not redistributable, so this crate
//! builds *structure-preserving* synthetic equivalents:
//!
//! * [`netgen`] — city-like road networks: a jittered grid with a
//!   guaranteed spanning backbone, tunable edge density (|E|/|V|) and
//!   shortcut edges, geographic coordinates and haversine weights;
//! * [`spatial`] — a uniform-grid spatial index over edges, used to embed
//!   each PoI "on the closest edge" exactly as the paper does (following
//!   its reference \[10\]);
//! * [`zipf`] — the skewed category popularity ("the number of PoI
//!   vertices associated with each category is significantly biased");
//! * [`dataset`] — the Tokyo / NYC / Cal presets, scalable from
//!   laptop-sized defaults up to the paper's full sizes;
//! * [`workload`] — query generation per §7.1: random start vertices,
//!   popular leaf categories drawn from distinct category trees;
//! * [`codec`] — a plain-text on-disk format for generated datasets.

pub mod codec;
pub mod dataset;
pub mod netgen;
pub mod spatial;
pub mod workload;
pub mod zipf;

pub use dataset::{Dataset, DatasetSpec, Preset};
pub use workload::{Workload, WorkloadSpec};
