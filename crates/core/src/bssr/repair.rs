//! Incremental skyline repair across weight epochs.
//!
//! When a weight-delta batch publishes a new epoch, a cached skyline is no
//! longer trustworthy — but when the batch touched a handful of arcs
//! nowhere near the query, recomputing the whole BSSR search throws away
//! everything the cache knew. Repair classifies the cached result against
//! the exact [`DeltaSet`](skysr_graph::DeltaSet) between its epoch and the
//! current one (packaged with its per-epoch-pair [`DeltaIndex`]), and does
//! the *cheapest sound thing*:
//!
//! 1. **Untouched** ([`wholesale_untouched`]) — a lower-bound check: if
//!    every touched arc's tail is provably farther from the query start
//!    than the longest cached route, the cached skyline *is* the new
//!    epoch's skyline, verbatim. The bound is the landmark (ALT) oracle
//!    over the manager's origin weights, scaled by the epoch's
//!    [`min_ratio`](skysr_graph::epoch::WeightOverlay::min_ratio) floor so
//!    it stays admissible under arbitrary reweighting. No graph search
//!    runs at all.
//! 2. **Rescore** — otherwise each cached route's length is recomputed as
//!    its sum of point-to-point shortest-path legs at the new epoch
//!    (early-terminating Dijkstras — far cheaper than a branch-and-bound
//!    search). If every length came back unchanged *and* no weight
//!    *decrease* is reachable within the skyline radius (checked by the
//!    same scaled landmark bound, then a single radius-bounded Dijkstra
//!    for the stragglers), the cached skyline is again exact and is
//!    promoted as-is.
//! 3. **Re-search** — only when a length actually changed or a decreased
//!    arc is within reach does a full search run, warm-seeded with the
//!    rescored survivors (genuine new-epoch lengths, so they only tighten
//!    the pruning thresholds — the NNinit argument).
//!
//! # Why the classification is sound
//!
//! Let `S_N` be the cached skyline at epoch `N`, `T` the longest length in
//! it, `D` the set of arcs whose weight differs between `N` and the target
//! epoch `M`, and `d_E(·,·)` shortest distances at epoch `E`. Two facts do
//! all the work:
//!
//! * *Any* path that crosses an arc of `D` first pays the full distance to
//!   that arc's tail over arcs **outside** `D` — and sub-paths avoiding
//!   `D` cost the same at `N` and `M`. So if `d_N(start, tail) > T` for
//!   every touched tail, no route of length ≤ `T` (cached or not, at
//!   either epoch) can use a touched arc, every such route's length is
//!   epoch-invariant, and every route longer than `T` stays dominated by
//!   the unchanged `S_N` member that dominated it at `N` (a dominator with
//!   no worse semantic score always exists, because semantic scores do not
//!   depend on weights). Hence `S_N` is exactly the epoch-`M` skyline.
//! * Weight *increases* can never promote a non-cached route past an
//!   unchanged cached one (`len_M(R) ≥ len_N(R)` when `R` avoids
//!   decreases). So after verifying by rescoring that every cached length
//!   is unchanged, only *decreases* within the `T`-radius ball around the
//!   start can invalidate the skyline — exactly what tier 2's relevance
//!   check rules out.
//!
//! All comparisons use a conservative margin ([`safely_beyond`]): ties and
//! near-ties fall through to the next (more expensive, still exact) tier,
//! so floating-point noise can only cost time, never exactness. The
//! end-to-end guarantee — a repaired skyline is score-equivalent to a
//! from-scratch search at the pinned epoch — is enforced by the replay
//! driver's `--verify` oracle and the repair property tests.

use std::time::Instant;

use skysr_graph::dijkstra::{dijkstra_with, shortest_distance, Settle};
use skysr_graph::fxhash::FxHashSet;
use skysr_graph::{Cost, DeltaIndex, DijkstraWorkspace, Landmarks, VertexId};

use crate::bssr::Bssr;
use crate::context::QueryContext;
use crate::error::QueryError;
use crate::prepared::PreparedQuery;
use crate::query::SkySrQuery;
use crate::route::{approx_le, SkylineRoute};
use crate::stats::QueryStats;

/// How a repair was resolved.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RepairOutcome {
    /// The cheap lower-bound check proved no touched arc can affect the
    /// skyline: promoted verbatim, no graph search ran.
    Untouched,
    /// Route lengths were re-derived at the new epoch and came back
    /// unchanged, and no reachable weight decrease exists: promoted after
    /// verification.
    Rescored,
    /// A full warm-seeded search had to run (the repair "fallback").
    Researched,
}

impl RepairOutcome {
    /// Stable lowercase name for telemetry (trace spans, exporters).
    pub fn label(self) -> &'static str {
        match self {
            RepairOutcome::Untouched => "untouched",
            RepairOutcome::Rescored => "rescored",
            RepairOutcome::Researched => "researched",
        }
    }
}

/// Per-repair breakdown, surfaced through the service metrics.
#[derive(Clone, Copy, Debug)]
pub struct RepairStats {
    /// How the repair was resolved.
    pub outcome: RepairOutcome,
    /// Cached routes proven untouched without any graph search.
    pub routes_untouched: usize,
    /// Cached routes whose legs were re-run at the new epoch.
    pub routes_rescored: usize,
}

impl RepairStats {
    /// Whether the cached skyline was promoted in place (no full search).
    pub fn repaired_in_place(&self) -> bool {
        self.outcome != RepairOutcome::Researched
    }
}

/// Result of one [`Bssr::repair`] run: the exact skyline at the engine's
/// (new) epoch, plus instrumentation.
#[derive(Clone, Debug)]
pub struct RepairResult {
    /// The skyline routes, sorted by ascending length. Score-equivalent to
    /// a from-scratch search at the engine's epoch.
    pub routes: Vec<SkylineRoute>,
    /// Search instrumentation (legs, relevance ball, fallback search).
    pub stats: QueryStats,
    /// Classification breakdown.
    pub repair: RepairStats,
}

/// Conservative margin for repair's reachability comparisons: `a` must
/// clear `b` by more than any plausible accumulated floating-point noise
/// before repair treats an arc as unreachable. Ties fall through to the
/// next tier, so the margin trades only time, never exactness.
const MARGIN: f64 = 1e-7;

/// Whether `a` exceeds `b` by clearly more than the float-noise margin.
#[inline]
pub fn safely_beyond(a: f64, b: f64) -> bool {
    a > b * (1.0 + MARGIN) + MARGIN
}

/// Scaled landmark lower bound on the distance from `start` to `v` at an
/// epoch with weight-ratio floor `ratio` — admissible because every arc
/// weight at that epoch is at least `ratio` times its origin weight, so
/// every path (and hence the shortest distance) scales accordingly.
#[inline]
fn scaled_lb(landmarks: &Landmarks, ratio: f64, start: VertexId, v: VertexId) -> f64 {
    ratio.clamp(0.0, 1.0) * landmarks.lower_bound(start, v).get()
}

/// The cheap wholesale-untouched check (repair tier 1): `true` iff every
/// arc touched by `delta` has its tail provably farther from `start` *at
/// the delta's older epoch* than `max_len`, the longest route of the
/// cached skyline. When it holds, the cached skyline is exactly the
/// newer epoch's skyline (see the module docs for the argument) — and a
/// cached *prefix* skyline stays a valid warm-start seed across the epoch
/// boundary, which is how the service rescues one-epoch-stale prefix
/// entries.
///
/// `landmarks` must be built over the weight manager's origin (epoch-0)
/// view; without an oracle the check degrades to "only an empty delta is
/// untouched".
pub fn wholesale_untouched(
    index: &DeltaIndex,
    landmarks: Option<&Landmarks>,
    start: VertexId,
    max_len: Cost,
) -> bool {
    let delta = index.delta();
    if delta.is_empty() {
        return true;
    }
    let Some(lm) = landmarks else {
        return false;
    };
    let ratio = delta.from_min_ratio();
    // Fast path: one O(landmarks) probe of the precomputed touched-ball
    // index clears the whole delta at once — the common "updates landed
    // far away" case costs the same whether the batch touched 2 arcs or
    // 2000, and is shared across every stale key of this epoch pair.
    if safely_beyond(ratio.clamp(0.0, 1.0) * index.touched_floor(lm, start), max_len.get()) {
        return true;
    }
    // Exact fallback: per-tail triangle bounds (strictly tighter than the
    // ball floor), same verdict the pre-index implementation computed.
    delta
        .touches()
        .iter()
        .all(|t| safely_beyond(scaled_lb(lm, ratio, start, t.tail), max_len.get()))
}

/// The smallest scaled lower bound from `start` to any touched tail — the
/// per-route skip floor of tier 2 (a route shorter than this provably
/// keeps its length across the delta).
fn touched_floor(index: &DeltaIndex, landmarks: Option<&Landmarks>, start: VertexId) -> f64 {
    let Some(lm) = landmarks else {
        return 0.0;
    };
    let delta = index.delta();
    let ratio = delta.from_min_ratio();
    delta
        .touches()
        .iter()
        .map(|t| scaled_lb(lm, ratio, start, t.tail))
        .fold(f64::INFINITY, f64::min)
}

/// Recomputes a route's length score at the engine's epoch as the sum of
/// its point-to-point shortest-path legs (`start → p₁ → … → p_k`), each an
/// early-terminating Dijkstra. `None` if a leg is unreachable (impossible
/// for a route cached on the same topology; treated as "changed" upstream).
fn rescore_route(
    ctx: &QueryContext<'_>,
    start: VertexId,
    route: &SkylineRoute,
    ws: &mut DijkstraWorkspace,
    stats: &mut QueryStats,
) -> Option<Cost> {
    let mut total = Cost::ZERO;
    let mut at = start;
    for &p in &route.pois {
        let d = shortest_distance(ctx.graph, ws, at, p)?;
        // `shortest_distance` leaves its stats inside `dijkstra_with`;
        // count the legs as ordinary search work.
        total += d;
        at = p;
    }
    stats.search.settled += route.pois.len() as u64; // settled targets, at minimum
    Some(total)
}

/// Whether any *decreased* arc of `delta` is reachable from `start`
/// within the skyline radius `max_len` at the engine's (new) epoch. Tails
/// cleared by the scaled landmark bound are skipped; the stragglers are
/// settled by one radius-bounded Dijkstra over the new-epoch graph.
fn decreases_relevant(
    ctx: &QueryContext<'_>,
    index: &DeltaIndex,
    landmarks: Option<&Landmarks>,
    start: VertexId,
    max_len: Cost,
    ws: &mut DijkstraWorkspace,
    stats: &mut QueryStats,
) -> bool {
    let delta = index.delta();
    // Fast path via the shared index: when the nearest *decreased* tail is
    // provably beyond the skyline radius (or nothing decreased at all —
    // the floor is then infinite), no per-tail probe or Dijkstra runs.
    if let Some(lm) = landmarks {
        let floor = index.decreased_floor(lm, start);
        if floor.is_infinite()
            || safely_beyond(delta.to_min_ratio().clamp(0.0, 1.0) * floor, max_len.get())
        {
            return false;
        }
    }
    let suspicious: FxHashSet<u32> = delta
        .touches()
        .iter()
        .filter(|t| t.decreased())
        .filter(|t| match landmarks {
            Some(lm) => {
                !safely_beyond(scaled_lb(lm, delta.to_min_ratio(), start, t.tail), max_len.get())
            }
            None => true,
        })
        .map(|t| t.tail.0)
        .collect();
    if suspicious.is_empty() {
        return false;
    }
    let mut relevant = false;
    let s = dijkstra_with(ctx.graph, ws, &[(start, Cost::ZERO)], |v, d| {
        if safely_beyond(d.get(), max_len.get()) {
            return Settle::Stop;
        }
        if suspicious.contains(&v.0) {
            relevant = true;
            return Settle::Stop;
        }
        Settle::Continue
    });
    stats.search.merge(&s);
    relevant
}

/// Outcome of the in-place tiers (1–2): either a promoted skyline, or the
/// rescored survivors a fallback search should be seeded with.
enum InPlace {
    Promoted { routes: Vec<SkylineRoute>, repair: RepairStats },
    Fallback { survivors: Vec<SkylineRoute>, routes_untouched: usize, routes_rescored: usize },
}

impl<'g> Bssr<'g> {
    /// Repairs `cached` — a skyline computed for `query` at the index's
    /// `delta().from_epoch()` — into the exact skyline at this engine's
    /// (newer) epoch, choosing the cheapest sound tier (see the module
    /// docs). `index` is the per-epoch-pair touched-ball index
    /// ([`DeltaIndex`]), built once from the exact delta and shared across
    /// every stale key of that epoch pair; `landmarks`, if provided, must
    /// be the oracle the index was built with (over the weight manager's
    /// origin view).
    ///
    /// The in-place tiers consult only the start vertex, the cached
    /// scores, the delta and the graph — *query preparation (similarity
    /// tables, candidate PoI sets) is skipped entirely* and paid only when
    /// the repair has to fall back to a real search. That asymmetry is
    /// most of repair's speed: on serving workloads the per-request cost
    /// drops from "compile + search" to a handful of lower-bound probes.
    ///
    /// The result is score-equivalent to a cold [`Bssr::run`] at the
    /// engine's epoch. Passing a skyline that was *not* computed for this
    /// query/epoch pair voids that guarantee — the cache-keyed caller
    /// (`skysr-service`) enforces it structurally.
    pub fn repair(
        &mut self,
        query: &SkySrQuery,
        cached: &[SkylineRoute],
        index: &DeltaIndex,
        landmarks: Option<&Landmarks>,
    ) -> Result<RepairResult, QueryError> {
        // The cheap validations a prepare would do; the rest (category
        // ids) is implied by the cached entry's existence and re-checked
        // by the fallback prepare.
        if query.is_empty() {
            return Err(QueryError::EmptySequence);
        }
        if query.start.index() >= self.ctx.graph.num_vertices() {
            return Err(QueryError::UnknownStart(query.start));
        }
        let t0 = Instant::now();
        let mut stats = QueryStats::default();
        match self.repair_in_place(query.start, cached, index, landmarks, &mut stats) {
            InPlace::Promoted { routes, repair } => {
                stats.total_time = t0.elapsed();
                self.absorb_profile(&stats);
                Ok(RepairResult { routes, stats, repair })
            }
            InPlace::Fallback { survivors, routes_untouched, routes_rescored } => {
                let pq = PreparedQuery::prepare(&self.ctx, query)?;
                Ok(self.fallback(&pq, survivors, routes_untouched, routes_rescored, stats, t0))
            }
        }
    }

    /// [`Bssr::repair`] over a pre-compiled query (callers that already
    /// paid for preparation).
    pub fn repair_prepared(
        &mut self,
        pq: &PreparedQuery,
        cached: &[SkylineRoute],
        index: &DeltaIndex,
        landmarks: Option<&Landmarks>,
    ) -> RepairResult {
        let t0 = Instant::now();
        let mut stats = QueryStats::default();
        match self.repair_in_place(pq.start, cached, index, landmarks, &mut stats) {
            InPlace::Promoted { routes, repair } => {
                stats.total_time = t0.elapsed();
                self.absorb_profile(&stats);
                RepairResult { routes, stats, repair }
            }
            InPlace::Fallback { survivors, routes_untouched, routes_rescored } => {
                self.fallback(pq, survivors, routes_untouched, routes_rescored, stats, t0)
            }
        }
    }

    /// Tiers 1–2: everything that can be decided without compiling the
    /// query.
    fn repair_in_place(
        &mut self,
        start: VertexId,
        cached: &[SkylineRoute],
        index: &DeltaIndex,
        landmarks: Option<&Landmarks>,
        stats: &mut QueryStats,
    ) -> InPlace {
        let ctx = self.ctx;

        // An empty skyline is weight-independent: no valid sequenced route
        // exists for topological/semantic reasons, and reweighting cannot
        // create one.
        if cached.is_empty() {
            return InPlace::Promoted {
                routes: Vec::new(),
                repair: RepairStats {
                    outcome: RepairOutcome::Untouched,
                    routes_untouched: 0,
                    routes_rescored: 0,
                },
            };
        }
        let max_len = cached.iter().map(|r| r.length).max().expect("non-empty");

        // Tier 1: every touched arc is provably beyond the skyline radius.
        if wholesale_untouched(index, landmarks, start, max_len) {
            let mut routes = cached.to_vec();
            routes.sort_by_key(|r| r.length);
            return InPlace::Promoted {
                routes,
                repair: RepairStats {
                    outcome: RepairOutcome::Untouched,
                    routes_untouched: cached.len(),
                    routes_rescored: 0,
                },
            };
        }

        // Tier 2: rescore each route's legs at the new epoch. Routes
        // strictly below the touched-distance floor provably kept their
        // length and skip the legs.
        let floor = touched_floor(index, landmarks, start);
        let mut survivors: Vec<SkylineRoute> = Vec::with_capacity(cached.len());
        let mut routes_untouched = 0usize;
        let mut routes_rescored = 0usize;
        let mut all_unchanged = true;
        for r in cached {
            if safely_beyond(floor, r.length.get()) {
                routes_untouched += 1;
                survivors.push(r.clone());
                continue;
            }
            routes_rescored += 1;
            match rescore_route(&ctx, start, r, &mut self.ws, stats) {
                Some(len) => {
                    // "Unchanged" must mean unchanged *at the dominance
                    // tolerance* (SCORE_EPS), not at the looser
                    // reachability margin: a genuine sub-MARGIN increase
                    // could otherwise break a dominance tie and surface a
                    // route this tier would silently drop. Anything beyond
                    // score-equivalence falls through to the re-search.
                    if !(approx_le(len.get(), r.length.get())
                        && approx_le(r.length.get(), len.get()))
                    {
                        all_unchanged = false;
                    }
                    survivors.push(SkylineRoute {
                        pois: r.pois.clone(),
                        length: len,
                        semantic: r.semantic,
                    });
                }
                None => all_unchanged = false,
            }
        }
        if all_unchanged
            && !decreases_relevant(&ctx, index, landmarks, start, max_len, &mut self.ws, stats)
        {
            survivors.sort_by_key(|r| r.length);
            return InPlace::Promoted {
                routes: survivors,
                repair: RepairStats {
                    outcome: RepairOutcome::Rescored,
                    routes_untouched,
                    routes_rescored,
                },
            };
        }
        InPlace::Fallback { survivors, routes_untouched, routes_rescored }
    }

    /// Tier 3: full warm-seeded re-search. The survivors carry genuine
    /// new-epoch lengths, so seeding them only tightens the pruning
    /// thresholds (the NNinit soundness argument).
    fn fallback(
        &mut self,
        pq: &PreparedQuery,
        survivors: Vec<SkylineRoute>,
        routes_untouched: usize,
        routes_rescored: usize,
        stats: QueryStats,
        t0: Instant,
    ) -> RepairResult {
        // Repairs promise score-equivalence to a cold run, so an armed
        // anytime deadline (see `Bssr::set_deadline`) must not truncate
        // the re-search — a partial labelled "repaired" would launder the
        // approximate flag away. Disarm for the duration.
        let deadline = self.deadline.take();
        let mut result = self.run_prepared_warm(pq, &survivors);
        self.deadline = deadline;
        // The warm search absorbed its own work into the scratch profile;
        // the in-place tiers' (rescoring legs, relevance ball) is only in
        // `stats`, so count it here — each unit of work exactly once.
        self.absorb_profile(&stats);
        result.stats.search.merge(&stats.search);
        result.stats.total_time = t0.elapsed();
        RepairResult {
            routes: result.routes,
            stats: result.stats,
            repair: RepairStats {
                outcome: RepairOutcome::Researched,
                routes_untouched,
                routes_rescored,
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bssr::BssrConfig;
    use crate::paper_example::PaperExample;
    use crate::route::equivalent_skylines;
    use skysr_graph::{EpochId, WeightDelta, WeightEpoch};

    /// Paper-example harness: cached skyline at epoch 0, repair across a
    /// published batch, oracle at the new epoch.
    struct Harness {
        ex: PaperExample,
        epochs: WeightEpoch,
        landmarks: Landmarks,
    }

    impl Harness {
        fn new() -> Harness {
            let ex = PaperExample::new();
            let landmarks = Landmarks::build(&ex.graph, 4, VertexId(0));
            let epochs = WeightEpoch::new(ex.graph.clone());
            Harness { ex, epochs, landmarks }
        }

        /// Runs the full round trip for one delta batch: cache at epoch 0,
        /// publish, repair, compare with oracle. Returns the outcome.
        fn round_trip(&self, deltas: &[WeightDelta]) -> RepairOutcome {
            let q = self.ex.query();
            let base = self.epochs.pin_at(EpochId::BASE).unwrap();
            let qctx0 = crate::context::QueryContext::new(&base, &self.ex.forest, &self.ex.pois);
            let cached = Bssr::new(&qctx0).run(&q).unwrap().routes;

            let to = self.epochs.publish(deltas);
            let delta = self.epochs.delta_between(EpochId::BASE, to).unwrap();
            let index = DeltaIndex::build(delta, Some(&self.landmarks));
            let pinned = self.epochs.pin();
            let qctx = crate::context::QueryContext::new(&pinned, &self.ex.forest, &self.ex.pois);
            let repaired =
                Bssr::new(&qctx).repair(&q, &cached, &index, Some(&self.landmarks)).unwrap();
            let oracle = Bssr::with_config(&qctx, BssrConfig::default()).run(&q).unwrap().routes;
            assert!(
                equivalent_skylines(&repaired.routes, &oracle),
                "repair ({:?}) diverged: {:?} vs oracle {:?}",
                repaired.repair.outcome,
                repaired.routes,
                oracle
            );
            repaired.repair.outcome
        }
    }

    #[test]
    fn empty_delta_is_untouched() {
        let h = Harness::new();
        assert_eq!(h.round_trip(&[]), RepairOutcome::Untouched);
    }

    #[test]
    fn repair_is_oracle_exact_for_assorted_deltas() {
        // Touch edges all over the paper graph, including on the skyline
        // routes themselves: every outcome class must stay exact.
        for (i, factor) in [(0usize, 3.0), (3, 0.4), (7, 2.0), (11, 0.25), (5, 1.5)] {
            let h = Harness::new();
            let (from, to, w) = h.ex.graph.arc(i);
            h.round_trip(&[WeightDelta::new(from, to, w.get() * factor)]);
        }
    }

    #[test]
    fn increases_on_route_arcs_force_a_researched_fallback_and_stay_exact() {
        let h = Harness::new();
        // Triple every arc: every route length changes, no shortcut is
        // safe — repair must fall back to the seeded search and agree with
        // the oracle.
        let deltas: Vec<WeightDelta> = (0..h.ex.graph.num_arcs())
            .step_by(2) // one direction per undirected edge is enough
            .map(|s| {
                let (from, to, w) = h.ex.graph.arc(s);
                WeightDelta::new(from, to, w.get() * 3.0)
            })
            .collect();
        assert_eq!(h.round_trip(&deltas), RepairOutcome::Researched);
    }

    #[test]
    fn decreases_near_the_start_are_never_trusted_blindly() {
        let h = Harness::new();
        // Make some arc near the start almost free: new dominating routes
        // may appear, so the repair must re-search — and must still agree.
        let (from, to, _) = h.ex.graph.arc(0);
        assert_eq!(h.round_trip(&[WeightDelta::new(from, to, 0.01)]), RepairOutcome::Researched);
    }

    #[test]
    fn empty_cached_skylines_promote_for_free() {
        let h = Harness::new();
        let to = h.epochs.publish(&[{
            let (from, to, w) = h.ex.graph.arc(0);
            WeightDelta::new(from, to, w.get() * 2.0)
        }]);
        let delta = h.epochs.delta_between(EpochId::BASE, to).unwrap();
        let index = DeltaIndex::build(delta, Some(&h.landmarks));
        let pinned = h.epochs.pin();
        let qctx = crate::context::QueryContext::new(&pinned, &h.ex.forest, &h.ex.pois);
        let r = Bssr::new(&qctx).repair(&h.ex.query(), &[], &index, Some(&h.landmarks)).unwrap();
        assert!(r.routes.is_empty());
        assert_eq!(r.repair.outcome, RepairOutcome::Untouched);
    }

    #[test]
    fn safely_beyond_requires_clear_separation() {
        assert!(safely_beyond(11.0, 10.0));
        assert!(!safely_beyond(10.0, 10.0));
        assert!(!safely_beyond(10.0 + 1e-12, 10.0), "ties fall through to the next tier");
        assert!(!safely_beyond(9.0, 10.0));
    }

    #[test]
    fn without_landmarks_repair_still_matches_the_oracle() {
        let h = Harness::new();
        let q = h.ex.query();
        let qctx0 = h.ex.context();
        let cached = Bssr::new(&qctx0).run(&q).unwrap().routes;
        let (from, to, w) = h.ex.graph.arc(9);
        let e = h.epochs.publish(&[WeightDelta::new(from, to, w.get() * 1.7)]);
        let index = DeltaIndex::build(h.epochs.delta_between(EpochId::BASE, e).unwrap(), None);
        let pinned = h.epochs.pin();
        let qctx = crate::context::QueryContext::new(&pinned, &h.ex.forest, &h.ex.pois);
        let repaired = Bssr::new(&qctx).repair(&q, &cached, &index, None).unwrap();
        let oracle = Bssr::new(&qctx).run(&q).unwrap().routes;
        assert!(equivalent_skylines(&repaired.routes, &oracle));
    }
}
