//! Benchmark harness for the SkySR paper reproduction.
//!
//! One binary per table/figure of the paper's §7 evaluation:
//!
//! | target | regenerates |
//! |---|---|
//! | `fig3_response_time` | Figure 3 (a–c): response time vs \|S_q\| |
//! | `table6_memory` | Table 6: peak heap per algorithm |
//! | `table7_initial_search` | Table 7: effect of the initial search |
//! | `table8_priority_queue` | Table 8: effect of the queue arrangement |
//! | `fig4_min_distance` | Figure 4: minimum-distance bound magnitudes |
//! | `fig5_caching` | Figure 5: modified-Dijkstra executions w/ & w/o cache |
//! | `fig6_num_skysrs` | Figure 6: number of SkySRs |
//! | `table1_example_routes` | Tables 1 & 9: example skyline route sets |
//! | `report` | everything above, in order |
//!
//! Experiment scale is configured by environment variables (see
//! [`config::ExpConfig`]); defaults finish on a laptop in minutes using the
//! `*Small` presets.

pub mod alloc;
pub mod config;
pub mod experiments;
pub mod fixtures;
pub mod runner;
pub mod table;

pub use config::ExpConfig;
