//! Single-source Dijkstra with reusable workspace and a settle callback.
//!
//! One driver serves plain shortest-path queries, radius-bounded searches,
//! and "stop at first hit" nearest-neighbour probes: the callback decides,
//! per settled vertex, whether to continue, skip expanding that vertex's
//! neighbours (Lemma 5.5(ii)), or stop the search.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::csr::RoadNetwork;
use crate::stats::SearchStats;
use crate::versioned::VersionedArray;
use crate::weight::Cost;
use crate::VertexId;

/// Decision returned by the settle callback.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Settle {
    /// Keep searching; expand this vertex's neighbours.
    Continue,
    /// Keep searching but do not expand this vertex's neighbours.
    SkipNeighbors,
    /// Terminate the whole search.
    Stop,
}

/// Reusable scratch state for Dijkstra runs over one graph size.
///
/// Holding distances in a [`VersionedArray`] makes the per-run reset O(1)
/// instead of O(|V|), which matters because BSSR runs the modified Dijkstra
/// algorithm hundreds of times per query.
#[derive(Clone, Debug)]
pub struct DijkstraWorkspace {
    dist: VersionedArray<f64>,
    parent: VersionedArray<u32>,
    visited: VersionedArray<bool>,
    heap: BinaryHeap<Reverse<(Cost, VertexId)>>,
}

impl DijkstraWorkspace {
    /// Workspace for graphs with up to `n` vertices.
    pub fn new(n: usize) -> DijkstraWorkspace {
        DijkstraWorkspace {
            dist: VersionedArray::new(n),
            parent: VersionedArray::new(n),
            visited: VersionedArray::new(n),
            heap: BinaryHeap::new(),
        }
    }

    /// Ensures capacity for `n` vertices.
    pub fn ensure(&mut self, n: usize) {
        self.dist.resize(n);
        self.parent.resize(n);
        self.visited.resize(n);
    }

    fn reset(&mut self) {
        self.dist.clear();
        self.parent.clear();
        self.visited.clear();
        self.heap.clear();
    }

    /// Final distance of `v` from the last run's sources (if settled or
    /// queued; queued entries hold their best tentative distance).
    pub fn distance(&self, v: VertexId) -> Option<Cost> {
        self.dist.get(v.index()).map(Cost::new)
    }

    /// Whether `v` was settled in the last run.
    pub fn settled(&self, v: VertexId) -> bool {
        self.visited.get(v.index()).unwrap_or(false)
    }

    /// Predecessor of `v` on its shortest path, if any.
    pub fn parent(&self, v: VertexId) -> Option<VertexId> {
        self.parent.get(v.index()).map(VertexId)
    }

    /// Reconstructs the vertex path from a source to `v` (inclusive) using
    /// the last run's parent pointers. Returns `None` if `v` was not
    /// reached.
    pub fn path_to(&self, v: VertexId) -> Option<Vec<VertexId>> {
        self.dist.get(v.index())?;
        let mut path = vec![v];
        let mut cur = v;
        while let Some(p) = self.parent(cur) {
            path.push(p);
            cur = p;
        }
        path.reverse();
        Some(path)
    }
}

/// Runs Dijkstra from `sources` (each with an initial offset cost), calling
/// `on_settle(vertex, dist)` for every settled vertex in non-decreasing
/// distance order.
///
/// The workspace retains distances and parents afterwards for path
/// reconstruction. Returns search statistics.
pub fn dijkstra_with<F>(
    graph: &RoadNetwork,
    ws: &mut DijkstraWorkspace,
    sources: &[(VertexId, Cost)],
    mut on_settle: F,
) -> SearchStats
where
    F: FnMut(VertexId, Cost) -> Settle,
{
    ws.ensure(graph.num_vertices());
    ws.reset();
    let mut stats = SearchStats::default();
    for &(s, c) in sources {
        let slot = ws.dist.get_or_insert(s.index(), f64::INFINITY);
        if c.get() < *slot {
            *slot = c.get();
            ws.heap.push(Reverse((c, s)));
            stats.pushed += 1;
        }
    }
    while let Some(Reverse((d, u))) = ws.heap.pop() {
        if ws.visited.get(u.index()).unwrap_or(false) {
            continue;
        }
        // Stale heap entry: a shorter distance was settled already.
        if ws.dist.get(u.index()).is_some_and(|best| best < d.get()) {
            continue;
        }
        ws.visited.set(u.index(), true);
        stats.settled += 1;
        match on_settle(u, d) {
            Settle::Stop => break,
            Settle::SkipNeighbors => continue,
            Settle::Continue => {}
        }
        for (v, w) in graph.neighbors(u) {
            stats.relaxed += 1;
            stats.weight_sum += w.get();
            if ws.visited.get(v.index()).unwrap_or(false) {
                continue;
            }
            let nd = d + w;
            let slot = ws.dist.get_or_insert(v.index(), f64::INFINITY);
            if nd.get() < *slot {
                *slot = nd.get();
                ws.parent.set(v.index(), u.0);
                ws.heap.push(Reverse((nd, v)));
                stats.pushed += 1;
            }
        }
    }
    stats
}

/// Convenience: full single-source search; afterwards query the workspace
/// for distances/paths.
pub fn dijkstra(graph: &RoadNetwork, ws: &mut DijkstraWorkspace, source: VertexId) -> SearchStats {
    dijkstra_with(graph, ws, &[(source, Cost::ZERO)], |_, _| Settle::Continue)
}

/// Convenience: shortest-path distance between two vertices, terminating as
/// soon as the target settles.
pub fn shortest_distance(
    graph: &RoadNetwork,
    ws: &mut DijkstraWorkspace,
    source: VertexId,
    target: VertexId,
) -> Option<Cost> {
    let mut found = None;
    dijkstra_with(graph, ws, &[(source, Cost::ZERO)], |v, d| {
        if v == target {
            found = Some(d);
            Settle::Stop
        } else {
            Settle::Continue
        }
    });
    found
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;

    /// 0 -1- 1 -1- 2
    ///  \----5----/
    fn diamond() -> RoadNetwork {
        let mut b = GraphBuilder::new();
        let v: Vec<_> = (0..3).map(|_| b.add_vertex()).collect();
        b.add_edge(v[0], v[1], 1.0);
        b.add_edge(v[1], v[2], 1.0);
        b.add_edge(v[0], v[2], 5.0);
        b.build()
    }

    #[test]
    fn shortest_path_prefers_two_hop() {
        let g = diamond();
        let mut ws = DijkstraWorkspace::new(g.num_vertices());
        let d = shortest_distance(&g, &mut ws, VertexId(0), VertexId(2)).unwrap();
        assert_eq!(d, Cost::new(2.0));
    }

    #[test]
    fn full_search_settles_all_reachable() {
        let g = diamond();
        let mut ws = DijkstraWorkspace::new(g.num_vertices());
        let stats = dijkstra(&g, &mut ws, VertexId(0));
        assert_eq!(stats.settled, 3);
        assert_eq!(ws.distance(VertexId(0)), Some(Cost::ZERO));
        assert_eq!(ws.distance(VertexId(1)), Some(Cost::new(1.0)));
        assert_eq!(ws.distance(VertexId(2)), Some(Cost::new(2.0)));
    }

    #[test]
    fn path_reconstruction() {
        let g = diamond();
        let mut ws = DijkstraWorkspace::new(g.num_vertices());
        dijkstra(&g, &mut ws, VertexId(0));
        assert_eq!(ws.path_to(VertexId(2)).unwrap(), vec![VertexId(0), VertexId(1), VertexId(2)]);
    }

    #[test]
    fn unreachable_vertex_has_no_distance() {
        let mut b = GraphBuilder::new();
        let v0 = b.add_vertex();
        let _v1 = b.add_vertex();
        let _ = v0;
        let g = b.build();
        let mut ws = DijkstraWorkspace::new(g.num_vertices());
        dijkstra(&g, &mut ws, VertexId(0));
        assert_eq!(ws.distance(VertexId(1)), None);
        assert_eq!(ws.path_to(VertexId(1)), None);
        assert!(shortest_distance(&g, &mut ws, VertexId(0), VertexId(1)).is_none());
    }

    #[test]
    fn skip_neighbors_blocks_expansion() {
        // 0 -1- 1 -1- 2: skipping 1's neighbours makes 2 unreachable.
        let mut b = GraphBuilder::new();
        let v: Vec<_> = (0..3).map(|_| b.add_vertex()).collect();
        b.add_edge(v[0], v[1], 1.0);
        b.add_edge(v[1], v[2], 1.0);
        let g = b.build();
        let mut ws = DijkstraWorkspace::new(g.num_vertices());
        let mut settled = vec![];
        dijkstra_with(&g, &mut ws, &[(VertexId(0), Cost::ZERO)], |v, _| {
            settled.push(v);
            if v == VertexId(1) {
                Settle::SkipNeighbors
            } else {
                Settle::Continue
            }
        });
        assert_eq!(settled, vec![VertexId(0), VertexId(1)]);
    }

    #[test]
    fn stop_terminates_early() {
        let g = diamond();
        let mut ws = DijkstraWorkspace::new(g.num_vertices());
        let mut count = 0;
        dijkstra_with(&g, &mut ws, &[(VertexId(0), Cost::ZERO)], |_, _| {
            count += 1;
            Settle::Stop
        });
        assert_eq!(count, 1);
    }

    #[test]
    fn source_offsets_act_like_virtual_super_source() {
        let g = diamond();
        let mut ws = DijkstraWorkspace::new(g.num_vertices());
        // Source 2 starts 0.5 "ahead": vertex 1 is reached at min(1.0, 0.5+1.0).
        dijkstra_with(
            &g,
            &mut ws,
            &[(VertexId(0), Cost::ZERO), (VertexId(2), Cost::new(0.5))],
            |_, _| Settle::Continue,
        );
        assert_eq!(ws.distance(VertexId(1)), Some(Cost::new(1.0)));
        assert_eq!(ws.distance(VertexId(2)), Some(Cost::new(0.5)));
    }

    #[test]
    fn settle_order_is_nondecreasing() {
        let g = diamond();
        let mut ws = DijkstraWorkspace::new(g.num_vertices());
        let mut last = Cost::ZERO;
        dijkstra_with(&g, &mut ws, &[(VertexId(0), Cost::ZERO)], |_, d| {
            assert!(d >= last);
            last = d;
            Settle::Continue
        });
    }

    #[test]
    fn workspace_reuse_resets_state() {
        let g = diamond();
        let mut ws = DijkstraWorkspace::new(g.num_vertices());
        dijkstra(&g, &mut ws, VertexId(0));
        dijkstra(&g, &mut ws, VertexId(2));
        assert_eq!(ws.distance(VertexId(0)), Some(Cost::new(2.0)));
        assert_eq!(ws.distance(VertexId(2)), Some(Cost::ZERO));
    }

    #[test]
    fn zero_weight_edges_are_fine() {
        let mut b = GraphBuilder::new();
        let v: Vec<_> = (0..3).map(|_| b.add_vertex()).collect();
        b.add_edge(v[0], v[1], 0.0);
        b.add_edge(v[1], v[2], 0.0);
        let g = b.build();
        let mut ws = DijkstraWorkspace::new(g.num_vertices());
        dijkstra(&g, &mut ws, VertexId(0));
        assert_eq!(ws.distance(VertexId(2)), Some(Cost::ZERO));
    }

    #[test]
    fn stats_count_work() {
        let g = diamond();
        let mut ws = DijkstraWorkspace::new(g.num_vertices());
        let stats = dijkstra(&g, &mut ws, VertexId(0));
        assert_eq!(stats.settled, 3);
        assert!(stats.relaxed >= 4);
        assert!(stats.weight_sum > 0.0);
    }
}
