//! Property-based tests for requirement canonicalization: on arbitrary
//! requirement trees, `canonical()` must be idempotent, insensitive to
//! branch order / duplication / same-connective nesting, and must preserve
//! the similarity function exactly.

use proptest::prelude::*;
use skysr_category::{CategoryForest, CategoryId, ForestBuilder, Requirement, WuPalmer};

/// Fixed two-tree forest all generated requirements draw categories from.
fn forest() -> CategoryForest {
    let mut b = ForestBuilder::new();
    let food = b.add_root("Food");
    let asian = b.add_child(food, "Asian");
    b.add_child(asian, "Sushi");
    b.add_child(food, "Italian");
    let shop = b.add_root("Shop");
    let clothing = b.add_child(shop, "Clothing");
    b.add_child(clothing, "Shoes");
    b.add_child(shop, "Gift");
    b.build()
}

const NUM_CATS: u32 = 8;

/// Decodes a flat token stream into a requirement tree. Every structural
/// decision consumes one token, so distinct streams explore distinct
/// shapes; `depth` bounds recursion.
fn decode(tokens: &mut std::slice::Iter<'_, u32>, depth: usize) -> Requirement {
    let t = *tokens.next().unwrap_or(&0);
    if depth == 0 {
        return Requirement::Category(CategoryId(t % NUM_CATS));
    }
    match t % 8 {
        0..=2 => Requirement::Category(CategoryId(t % NUM_CATS)),
        3 | 4 => {
            let n = (t / 8) % 3 + 1;
            Requirement::AnyOf((0..n).map(|_| decode(tokens, depth - 1)).collect())
        }
        5 | 6 => {
            let n = (t / 8) % 3 + 1;
            Requirement::AllOf((0..n).map(|_| decode(tokens, depth - 1)).collect())
        }
        _ => Requirement::Exclude {
            base: Box::new(decode(tokens, depth - 1)),
            not: CategoryId((t / 8) % NUM_CATS),
        },
    }
}

fn requirement_from(tokens: &[u32]) -> Requirement {
    decode(&mut tokens.iter(), 3)
}

/// A similarity-preserving scramble: recursively reverses branch order,
/// duplicates the first branch of every connective, and re-nests exclusion
/// chains in reversed order. Canonicalization must erase all of it.
fn scramble(r: &Requirement) -> Requirement {
    match r {
        Requirement::Category(c) => Requirement::Category(*c),
        Requirement::AnyOf(parts) => {
            let mut out: Vec<Requirement> = parts.iter().rev().map(scramble).collect();
            if let Some(first) = out.first().cloned() {
                out.push(first);
            }
            Requirement::AnyOf(out)
        }
        Requirement::AllOf(parts) => {
            let mut out: Vec<Requirement> = parts.iter().rev().map(scramble).collect();
            if let Some(first) = out.first().cloned() {
                out.push(first);
            }
            Requirement::AllOf(out)
        }
        Requirement::Exclude { .. } => {
            let mut nots = Vec::new();
            let mut cur = r;
            while let Requirement::Exclude { base, not } = cur {
                nots.push(*not);
                cur = base;
            }
            let mut out = scramble(cur);
            // Rebuild the chain with the exclusions in the reverse of the
            // original application order (plus a duplicate).
            nots.push(nots[0]);
            for n in nots {
                out = Requirement::Exclude { base: Box::new(out), not: n };
            }
            out
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    #[test]
    fn canonicalization_is_idempotent(tokens in prop::collection::vec(0u32..4096, 1..40)) {
        let r = requirement_from(&tokens);
        let canon = r.canonical();
        prop_assert_eq!(canon.canonical(), canon);
    }

    #[test]
    fn canonicalization_is_order_and_duplication_insensitive(
        tokens in prop::collection::vec(0u32..4096, 1..40),
    ) {
        let r = requirement_from(&tokens);
        let scrambled = scramble(&r);
        prop_assert_eq!(scrambled.canonical(), r.canonical());
    }

    #[test]
    fn canonicalization_preserves_similarity(
        tokens in prop::collection::vec(0u32..4096, 1..40),
        poi_cats in prop::collection::vec(0u32..NUM_CATS, 0..4),
    ) {
        let f = forest();
        let cats: Vec<CategoryId> = poi_cats.into_iter().map(CategoryId).collect();
        let r = requirement_from(&tokens);
        let canon = r.canonical();
        let scrambled = scramble(&r);
        // max/min over the same value multiset: bitwise-identical scores.
        let want = r.similarity(&f, &WuPalmer, &cats);
        prop_assert_eq!(canon.similarity(&f, &WuPalmer, &cats), want);
        prop_assert_eq!(scrambled.similarity(&f, &WuPalmer, &cats), want);
        // The canonical form also matches/excludes the same PoIs perfectly.
        prop_assert_eq!(canon.perfect(&f, &WuPalmer, &cats), r.perfect(&f, &WuPalmer, &cats));
    }
}
