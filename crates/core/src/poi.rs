//! PoI ↔ category association (the paper's `P`, `P_c`, `P_t`).
//!
//! A [`PoiTable`] records which graph vertices are PoIs and which
//! category/categories each carries. Section 5 assumes one category per
//! PoI; §6 lifts that to multiple categories, so the table stores a small
//! list per vertex and everything downstream takes the max similarity over
//! the list.
//!
//! Per the paper's association rule (§3): a PoI with category `c` is also
//! associated with every ancestor of `c`, so `P_c` for an internal category
//! includes all PoIs in `c`'s subtree and `P_t` is every PoI in the tree.

use skysr_category::{CategoryForest, CategoryId};
use skysr_graph::VertexId;

/// Immutable-after-finalise PoI/category table.
#[derive(Clone, Debug, Default)]
pub struct PoiTable {
    /// Per vertex: its categories (empty for plain road vertices).
    cats: Vec<Vec<CategoryId>>,
    /// Per category: PoIs whose *own* category list contains it (no
    /// ancestor closure).
    by_exact_category: Vec<Vec<VertexId>>,
    /// Per tree id: every PoI associated with that tree.
    by_tree: Vec<Vec<VertexId>>,
    /// All PoI vertices, ascending.
    pois: Vec<VertexId>,
}

impl PoiTable {
    /// Creates a table for a graph of `num_vertices` vertices; PoIs are
    /// added with [`PoiTable::add_poi`], then [`PoiTable::finalize`] builds
    /// the per-category / per-tree indexes.
    pub fn new(num_vertices: usize) -> PoiTable {
        PoiTable {
            cats: vec![Vec::new(); num_vertices],
            by_exact_category: Vec::new(),
            by_tree: Vec::new(),
            pois: Vec::new(),
        }
    }

    /// Tags vertex `v` with category `c` (repeatable for multi-category
    /// PoIs, §6).
    pub fn add_poi(&mut self, v: VertexId, c: CategoryId) {
        let list = &mut self.cats[v.index()];
        if !list.contains(&c) {
            list.push(c);
        }
    }

    /// Builds the category/tree indexes. Must be called (once) before
    /// queries run.
    pub fn finalize(&mut self, forest: &CategoryForest) {
        self.by_exact_category = vec![Vec::new(); forest.num_categories()];
        self.by_tree = vec![Vec::new(); forest.num_trees()];
        self.pois.clear();
        for (i, cats) in self.cats.iter().enumerate() {
            if cats.is_empty() {
                continue;
            }
            let v = VertexId(i as u32);
            self.pois.push(v);
            let mut trees_seen: Vec<u32> = Vec::with_capacity(cats.len());
            for &c in cats {
                assert!(c.index() < forest.num_categories(), "category {c:?} not in forest");
                self.by_exact_category[c.index()].push(v);
                let t = forest.tree_of(c);
                if !trees_seen.contains(&t) {
                    trees_seen.push(t);
                    self.by_tree[t as usize].push(v);
                }
            }
        }
    }

    /// Number of PoI vertices (the paper's |P|).
    pub fn num_pois(&self) -> usize {
        self.pois.len()
    }

    /// All PoI vertices in ascending id order.
    pub fn pois(&self) -> &[VertexId] {
        &self.pois
    }

    /// Categories of `v` (empty slice for non-PoIs).
    #[inline]
    pub fn categories_of(&self, v: VertexId) -> &[CategoryId] {
        &self.cats[v.index()]
    }

    /// Whether `v` is a PoI.
    #[inline]
    pub fn is_poi(&self, v: VertexId) -> bool {
        !self.cats[v.index()].is_empty()
    }

    /// PoIs whose own category equals `c` (exact, no subtree closure).
    pub fn pois_with_exact_category(&self, c: CategoryId) -> &[VertexId] {
        &self.by_exact_category[c.index()]
    }

    /// The paper's `P_c`: PoIs associated with `c`, i.e. PoIs tagged with
    /// `c` or any descendant of `c`.
    pub fn pois_associated_with(&self, forest: &CategoryForest, c: CategoryId) -> Vec<VertexId> {
        let mut out: Vec<VertexId> = Vec::new();
        for d in forest.descendants_or_self(c) {
            out.extend_from_slice(self.pois_with_exact_category(d));
        }
        out.sort_unstable();
        out.dedup();
        out
    }

    /// The paper's `P_t`: PoIs associated with the tree containing `c`.
    pub fn pois_in_tree_of(&self, forest: &CategoryForest, c: CategoryId) -> &[VertexId] {
        &self.by_tree[forest.tree_of(c) as usize]
    }

    /// Histogram: number of PoIs tagged with each exact category.
    pub fn category_histogram(&self) -> Vec<(CategoryId, usize)> {
        self.by_exact_category
            .iter()
            .enumerate()
            .map(|(i, v)| (CategoryId(i as u32), v.len()))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use skysr_category::ForestBuilder;

    fn forest() -> CategoryForest {
        let mut b = ForestBuilder::new();
        let food = b.add_root("Food");
        let asian = b.add_child(food, "Asian");
        b.add_child(asian, "Sushi");
        b.add_child(food, "Italian");
        let shop = b.add_root("Shop");
        b.add_child(shop, "Gift");
        b.build()
    }

    #[test]
    fn exact_and_associated_sets() {
        let f = forest();
        let sushi = f.by_name("Sushi").unwrap();
        let asian = f.by_name("Asian").unwrap();
        let food = f.by_name("Food").unwrap();
        let mut t = PoiTable::new(10);
        t.add_poi(VertexId(1), sushi);
        t.add_poi(VertexId(2), asian);
        t.add_poi(VertexId(3), f.by_name("Italian").unwrap());
        t.finalize(&f);

        assert_eq!(t.num_pois(), 3);
        assert_eq!(t.pois_with_exact_category(sushi), &[VertexId(1)]);
        assert_eq!(t.pois_with_exact_category(asian), &[VertexId(2)]);
        // P_Asian includes the sushi PoI (descendant).
        assert_eq!(t.pois_associated_with(&f, asian), vec![VertexId(1), VertexId(2)]);
        // P_Food includes everything in the food tree.
        assert_eq!(t.pois_associated_with(&f, food), vec![VertexId(1), VertexId(2), VertexId(3)]);
    }

    #[test]
    fn tree_sets() {
        let f = forest();
        let sushi = f.by_name("Sushi").unwrap();
        let gift = f.by_name("Gift").unwrap();
        let mut t = PoiTable::new(5);
        t.add_poi(VertexId(0), sushi);
        t.add_poi(VertexId(4), gift);
        t.finalize(&f);
        assert_eq!(t.pois_in_tree_of(&f, sushi), &[VertexId(0)]);
        assert_eq!(t.pois_in_tree_of(&f, gift), &[VertexId(4)]);
    }

    #[test]
    fn multi_category_poi_appears_in_both_trees() {
        let f = forest();
        let sushi = f.by_name("Sushi").unwrap();
        let gift = f.by_name("Gift").unwrap();
        let mut t = PoiTable::new(3);
        t.add_poi(VertexId(1), sushi);
        t.add_poi(VertexId(1), gift);
        t.finalize(&f);
        assert_eq!(t.num_pois(), 1);
        assert_eq!(t.categories_of(VertexId(1)), &[sushi, gift]);
        assert_eq!(t.pois_in_tree_of(&f, sushi), &[VertexId(1)]);
        assert_eq!(t.pois_in_tree_of(&f, gift), &[VertexId(1)]);
    }

    #[test]
    fn duplicate_tagging_is_idempotent() {
        let f = forest();
        let gift = f.by_name("Gift").unwrap();
        let mut t = PoiTable::new(2);
        t.add_poi(VertexId(0), gift);
        t.add_poi(VertexId(0), gift);
        t.finalize(&f);
        assert_eq!(t.categories_of(VertexId(0)).len(), 1);
        assert_eq!(t.pois_with_exact_category(gift).len(), 1);
    }

    #[test]
    fn non_poi_vertices_report_empty() {
        let f = forest();
        let mut t = PoiTable::new(2);
        t.finalize(&f);
        assert!(!t.is_poi(VertexId(0)));
        assert!(t.categories_of(VertexId(1)).is_empty());
        assert_eq!(t.num_pois(), 0);
    }

    #[test]
    fn histogram_counts() {
        let f = forest();
        let gift = f.by_name("Gift").unwrap();
        let mut t = PoiTable::new(4);
        t.add_poi(VertexId(0), gift);
        t.add_poi(VertexId(1), gift);
        t.finalize(&f);
        let h = t.category_histogram();
        assert_eq!(h[gift.index()].1, 2);
    }
}
