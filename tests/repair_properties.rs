//! Property-based guarantees for incremental skyline repair and epoch
//! history GC, on arbitrary random instances:
//!
//! * **Repair exactness** — for random graphs, queries and weight-delta
//!   batches, `Bssr::repair` of the old-epoch skyline is score-equivalent
//!   to a from-scratch search at the new epoch, whatever tier resolved it.
//! * **Untouched conservativeness** — whenever the cheap
//!   `wholesale_untouched` lower-bound check accepts a delta, the cached
//!   skyline *is* byte-for-byte the new epoch's exact skyline: the check
//!   never drops (or keeps) a route a full search would decide otherwise.
//! * **GC/compaction transparency** — compacting the epoch history never
//!   changes any arc weight (nor `total_weight`) observable through any
//!   still-pinnable epoch, with pins held across sweeps and rebases.

use proptest::prelude::*;
use skysr::category::{CategoryForest, CategoryId, ForestBuilder};
use skysr::core::bssr::repair::wholesale_untouched;
use skysr::core::bssr::{Bssr, RepairOutcome};
use skysr::core::route::equivalent_skylines;
use skysr::core::{PoiTable, QueryContext, SkySrQuery};
use skysr::graph::{
    Cost, DeltaIndex, EpochId, GraphBuilder, Landmarks, RoadNetwork, VertexId, WeightDelta,
    WeightEpoch,
};

/// A random but always-valid test instance plus a weight-delta batch.
#[derive(Debug, Clone)]
struct Instance {
    n: usize,
    path_weights: Vec<f64>,
    extra_edges: Vec<(usize, usize, f64)>,
    poi_cats: Vec<Option<usize>>,
    start: usize,
    query_cats: Vec<usize>,
    /// (arc index into `0..num_arcs`, multiplicative factor).
    deltas: Vec<(usize, f64)>,
}

fn forest() -> CategoryForest {
    let mut b = ForestBuilder::new();
    let food = b.add_root("Food");
    let asian = b.add_child(food, "Asian");
    b.add_child(asian, "Sushi");
    b.add_child(food, "Italian");
    let shop = b.add_root("Shop");
    b.add_child(shop, "Gift");
    b.build()
}

const NUM_CATS: usize = 6;

fn arb_instance() -> impl Strategy<Value = Instance> {
    (4usize..10)
        .prop_flat_map(|n| {
            (
                Just(n),
                prop::collection::vec(0.5f64..8.0, n - 1),
                prop::collection::vec((0..n, 0..n, 0.5f64..8.0), 0..8),
                prop::collection::vec(prop::option::of(0..NUM_CATS), n),
                0..n,
                prop::collection::vec(0..NUM_CATS, 1..3),
                prop::collection::vec((0usize..64, 0.2f64..4.0), 1..6),
            )
        })
        .prop_map(|(n, path_weights, extra_edges, poi_cats, start, query_cats, deltas)| Instance {
            n,
            path_weights,
            extra_edges,
            poi_cats,
            start,
            query_cats,
            deltas,
        })
}

struct Built {
    graph: RoadNetwork,
    forest: CategoryForest,
    pois: PoiTable,
    query: SkySrQuery,
    deltas: Vec<WeightDelta>,
}

fn build(inst: &Instance) -> Built {
    let forest = forest();
    let mut g = GraphBuilder::new();
    let vs: Vec<VertexId> = (0..inst.n).map(|_| g.add_vertex()).collect();
    for (i, &w) in inst.path_weights.iter().enumerate() {
        g.add_edge(vs[i], vs[i + 1], w);
    }
    for &(a, b, w) in &inst.extra_edges {
        g.add_edge(vs[a], vs[b], w);
    }
    let graph = g.build();
    let mut pois = PoiTable::new(inst.n);
    for (i, cat) in inst.poi_cats.iter().enumerate() {
        if let Some(c) = cat {
            pois.add_poi(vs[i], CategoryId(*c as u32));
        }
    }
    pois.finalize(&forest);
    let query =
        SkySrQuery::new(vs[inst.start], inst.query_cats.iter().map(|&c| CategoryId(c as u32)));
    // Resolve the delta batch against the real arc count.
    let deltas = inst
        .deltas
        .iter()
        .map(|&(slot, factor)| {
            let (from, to, w) = graph.arc(slot % graph.num_arcs());
            WeightDelta::new(from, to, w.get() * factor)
        })
        .collect();
    Built { graph, forest, pois, query, deltas }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn repaired_skyline_matches_from_scratch_search(inst in arb_instance()) {
        let built = build(&inst);
        let epochs = WeightEpoch::new(built.graph.clone());
        let landmarks = Landmarks::build(&built.graph, 3, VertexId(0));

        // Cache at epoch 0.
        let base = epochs.pin();
        let ctx0 = QueryContext::new(&base, &built.forest, &built.pois);
        let cached = Bssr::new(&ctx0).run(&built.query).expect("valid query").routes;

        // Publish the random batch, repair across it.
        let to = epochs.publish(&built.deltas);
        let delta = epochs.delta_between(EpochId::BASE, to).expect("both epochs retained");
        let index = DeltaIndex::build(delta, Some(&landmarks));
        let pinned = epochs.pin();
        let ctx = QueryContext::new(&pinned, &built.forest, &built.pois);
        let repaired = Bssr::new(&ctx)
            .repair(&built.query, &cached, &index, Some(&landmarks))
            .expect("valid query");
        let fresh = Bssr::new(&ctx).run(&built.query).unwrap().routes;
        prop_assert!(
            equivalent_skylines(&repaired.routes, &fresh),
            "outcome {:?}: repaired {:?} vs fresh {:?} (deltas {:?})",
            repaired.repair.outcome,
            repaired.routes,
            fresh,
            built.deltas
        );
    }

    #[test]
    fn untouched_classification_is_conservative(inst in arb_instance()) {
        // Whenever the cheap check accepts, the cached skyline must be
        // *identical* (same scores, not just equivalent) to a from-scratch
        // search at the new epoch — the check may never approve a delta
        // that could drop, add or rescore a route.
        let built = build(&inst);
        let epochs = WeightEpoch::new(built.graph.clone());
        let landmarks = Landmarks::build(&built.graph, 3, VertexId(0));
        let base = epochs.pin();
        let ctx0 = QueryContext::new(&base, &built.forest, &built.pois);
        let cached = Bssr::new(&ctx0).run(&built.query).expect("valid query").routes;
        let max_len = cached.iter().map(|r| r.length).max().unwrap_or(Cost::ZERO);

        let to = epochs.publish(&built.deltas);
        let index =
            DeltaIndex::build(epochs.delta_between(EpochId::BASE, to).unwrap(), Some(&landmarks));
        if !cached.is_empty()
            && wholesale_untouched(&index, Some(&landmarks), built.query.start, max_len)
        {
            let pinned = epochs.pin();
            let ctx = QueryContext::new(&pinned, &built.forest, &built.pois);
            let fresh = Bssr::new(&ctx).run(&built.query).unwrap().routes;
            prop_assert!(
                equivalent_skylines(&cached, &fresh),
                "untouched-approved delta changed the skyline: cached {cached:?} vs fresh \
                 {fresh:?} (deltas {:?})",
                built.deltas
            );
            // And the repair tier must agree with its own classification.
            let repaired = Bssr::new(&ctx)
                .repair(&built.query, &cached, &index, Some(&landmarks))
                .unwrap();
            prop_assert_eq!(repaired.repair.outcome, RepairOutcome::Untouched);
        }
    }

    #[test]
    fn compaction_preserves_weights_at_every_pinnable_epoch(inst in arb_instance()) {
        // Publish several batches, hold pins on a couple of epochs, run
        // sweeps + rebases, and require every still-pinnable epoch to
        // report exactly the weights an uncompacted manager reports.
        let built = build(&inst);
        let bounded = WeightEpoch::with_retention(built.graph.clone(), 2);
        let reference = WeightEpoch::new(built.graph.clone());

        // Several single-delta batches out of the instance's pool (cycled
        // so even 1-delta instances produce a few epochs).
        let batches: Vec<&WeightDelta> = built.deltas.iter().cycle().take(5).collect();
        let mut held: Vec<(EpochId, RoadNetwork)> = Vec::new();
        for (i, d) in batches.iter().enumerate() {
            let e = bounded.publish(std::slice::from_ref(*d));
            prop_assert_eq!(e, reference.publish(std::slice::from_ref(*d)));
            if i % 2 == 0 {
                // Hold a lease on every other epoch across future sweeps.
                held.push((e, bounded.pin_at(e).expect("fresh epoch pins")));
            }
            bounded.compact(); // sweep + rebase mid-stream
        }

        // Every epoch still pinnable from the bounded manager must agree
        // arc-for-arc (and in total) with the reference manager.
        for e in 0..=bounded.current_epoch().get() {
            let Some(view) = bounded.pin_at(EpochId(e)) else { continue };
            let truth = reference.pin_at(EpochId(e)).expect("reference retains everything");
            for slot in 0..truth.num_arcs() {
                prop_assert_eq!(view.arc(slot), truth.arc(slot), "epoch {}", e);
            }
            let (a, b) = (view.total_weight(), truth.total_weight());
            prop_assert!((a - b).abs() <= 1e-9 * (1.0 + b.abs()), "epoch {e}: {a} vs {b}");
        }
        // Held leases specifically survived every sweep, unchanged.
        for (e, view) in &held {
            let truth = reference.pin_at(*e).unwrap();
            for slot in 0..truth.num_arcs() {
                prop_assert_eq!(view.arc(slot), truth.arc(slot));
            }
            prop_assert!(bounded.pin_at(*e).is_some(), "leased epoch {e} stayed pinnable");
        }
    }
}
