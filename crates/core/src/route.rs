//! Routes and their scores (Definitions 3.2 and 3.5).
//!
//! BSSR's priority queue can hold many thousands of partial routes, most of
//! which share prefixes (a route and all its extensions). [`PartialRoute`]
//! therefore stores the PoI sequence as an immutable `Arc`-linked list:
//! extending is O(1) and cloning is a refcount bump. Routes are short
//! (|R| ≤ |Sq|, which is ≤ 5 in every experiment), so walking the list for
//! duplicate checks or materialisation is trivial.

use std::sync::Arc;

use skysr_graph::{Cost, VertexId};

/// Shared-suffix node of a route's PoI list.
#[derive(Debug)]
struct RouteNode {
    poi: VertexId,
    prev: Option<Arc<RouteNode>>,
}

/// A (possibly partial) sequenced route under construction.
///
/// Carries the two scores of Definition 3.5 incrementally: `length` is
/// `l(R)` (start → p₁ → … → p_len), and `sim_acc` is the running
/// aggregation accumulator (`Π h_i` for the product form of Eq. 7), so the
/// semantic score of the partial route — the *minimum* any completion can
/// reach — is `1 − sim_acc`.
#[derive(Clone, Debug)]
pub struct PartialRoute {
    last: Option<Arc<RouteNode>>,
    len: u8,
    length: Cost,
    sim_acc: f64,
}

impl PartialRoute {
    /// The empty route at the start vertex.
    pub fn empty() -> PartialRoute {
        PartialRoute { last: None, len: 0, length: Cost::ZERO, sim_acc: 1.0 }
    }

    /// Number of PoIs in the route (the paper's |R|).
    #[inline]
    pub fn len(&self) -> usize {
        self.len as usize
    }

    /// Whether no PoI has been appended yet.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Length score `l(R)`.
    #[inline]
    pub fn length(&self) -> Cost {
        self.length
    }

    /// Aggregation accumulator (product of similarities so far).
    #[inline]
    pub fn sim_acc(&self) -> f64 {
        self.sim_acc
    }

    /// Semantic score `s(R)` — for a partial route, the minimum semantic
    /// score of any completion (Definition 3.5's convention, required by
    /// Lemma 5.2).
    #[inline]
    pub fn semantic(&self) -> f64 {
        1.0 - self.sim_acc
    }

    /// Last PoI of the route, if any.
    pub fn last_poi(&self) -> Option<VertexId> {
        self.last.as_ref().map(|n| n.poi)
    }

    /// `R ⊕ p` (Definition 3.2): appends `poi` reached `hop_cost` after the
    /// current end, matched with similarity `sim`.
    pub fn extend(&self, poi: VertexId, hop_cost: Cost, sim: f64) -> PartialRoute {
        debug_assert!((0.0..=1.0).contains(&sim));
        PartialRoute {
            last: Some(Arc::new(RouteNode { poi, prev: self.last.clone() })),
            len: self.len + 1,
            length: self.length + hop_cost,
            sim_acc: self.sim_acc * sim,
        }
    }

    /// Whether `v` already appears in the route (Definition 3.4(iii): all
    /// PoI vertices must differ).
    pub fn contains(&self, v: VertexId) -> bool {
        let mut cur = self.last.as_deref();
        while let Some(n) = cur {
            if n.poi == v {
                return true;
            }
            cur = n.prev.as_deref();
        }
        false
    }

    /// Materialises the PoI sequence front-to-back.
    pub fn pois(&self) -> Vec<VertexId> {
        let mut out = Vec::with_capacity(self.len as usize);
        let mut cur = self.last.as_deref();
        while let Some(n) = cur {
            out.push(n.poi);
            cur = n.prev.as_deref();
        }
        out.reverse();
        out
    }

    /// Converts a completed route into an owned result record.
    pub fn into_skyline_route(&self) -> SkylineRoute {
        SkylineRoute { pois: self.pois(), length: self.length, semantic: self.semantic() }
    }
}

/// Relative tolerance for score comparisons.
///
/// Different algorithms accumulate the same route's length in different
/// floating-point orders (BSSR sums per-hop Dijkstra distances, the OSR
/// baselines accumulate edge by edge), so score-identical routes can differ
/// in the last few ulps. All dominance decisions therefore use an
/// epsilon-aware `≤`, which keeps every algorithm's skyline identical.
pub const SCORE_EPS: f64 = 1e-9;

/// `a ≤ b` up to [`SCORE_EPS`] relative tolerance.
#[inline]
pub fn approx_le(a: f64, b: f64) -> bool {
    a <= b + SCORE_EPS * a.abs().max(b.abs()).max(1.0)
}

/// `a < b` by clearly more than the tolerance.
#[inline]
pub fn strictly_lt(a: f64, b: f64) -> bool {
    !approx_le(b, a)
}

/// A completed sequenced route as returned by queries.
#[derive(Clone, Debug, PartialEq)]
pub struct SkylineRoute {
    /// PoI vertices in visiting order.
    pub pois: Vec<VertexId>,
    /// Length score `l(R)`.
    pub length: Cost,
    /// Semantic score `s(R)`.
    pub semantic: f64,
}

impl SkylineRoute {
    /// Dominance test (Definition 4.1): `self` dominates `other` iff it is
    /// at least as good in both scores and strictly better in one (up to
    /// [`SCORE_EPS`]).
    pub fn dominates(&self, other: &SkylineRoute) -> bool {
        (strictly_lt(self.length.get(), other.length.get())
            && approx_le(self.semantic, other.semantic))
            || (strictly_lt(self.semantic, other.semantic)
                && approx_le(self.length.get(), other.length.get()))
    }

    /// Score equivalence (same length and semantic scores up to
    /// [`SCORE_EPS`]).
    pub fn equivalent(&self, other: &SkylineRoute) -> bool {
        approx_le(self.length.get(), other.length.get())
            && approx_le(other.length.get(), self.length.get())
            && approx_le(self.semantic, other.semantic)
            && approx_le(other.semantic, self.semantic)
    }
}

/// Whether two skylines are score-equivalent: same size, and a perfect
/// matching pairs every route of `a` with a distinct route of `b` whose
/// scores are [`SkylineRoute::equivalent`].
///
/// This is the correctness gate for execution strategies that may pick a
/// *different representative route* for a score-tied skyline point (e.g. a
/// warm-started search seeds a valid route first, and the cold search's
/// score-equivalent twin is then rejected as a duplicate) or accumulate a
/// length in a different floating-point order. The skyline as a set of
/// (length, semantic) trade-offs must be identical up to
/// [`SCORE_EPS`]; the PoI sequences realising a tied point may differ.
pub fn equivalent_skylines(a: &[SkylineRoute], b: &[SkylineRoute]) -> bool {
    if a.len() != b.len() {
        return false;
    }
    // Greedy first-fit over an epsilon relation is order-sensitive (the
    // relation is not transitive), so sort both sides by score first:
    // near-equal values then line up in the same relative order and the
    // greedy pass finds a perfect matching whenever one exists.
    fn sorted(routes: &[SkylineRoute]) -> Vec<&SkylineRoute> {
        let mut rs: Vec<&SkylineRoute> = routes.iter().collect();
        rs.sort_by(|x, y| x.length.cmp(&y.length).then_with(|| x.semantic.total_cmp(&y.semantic)));
        rs
    }
    let a = sorted(a);
    let b = sorted(b);
    let mut used = vec![false; b.len()];
    'outer: for ra in a {
        for (j, rb) in b.iter().enumerate() {
            if !used[j] && ra.equivalent(rb) {
                used[j] = true;
                continue 'outer;
            }
        }
        return false;
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sky(l: f64, s: f64) -> SkylineRoute {
        SkylineRoute { pois: vec![], length: Cost::new(l), semantic: s }
    }

    #[test]
    fn empty_route_scores() {
        let r = PartialRoute::empty();
        assert!(r.is_empty());
        assert_eq!(r.length(), Cost::ZERO);
        assert_eq!(r.semantic(), 0.0);
        assert_eq!(r.last_poi(), None);
        assert!(r.pois().is_empty());
    }

    #[test]
    fn extension_accumulates_scores() {
        let r = PartialRoute::empty().extend(VertexId(3), Cost::new(2.0), 1.0).extend(
            VertexId(5),
            Cost::new(3.0),
            0.5,
        );
        assert_eq!(r.len(), 2);
        assert_eq!(r.length(), Cost::new(5.0));
        assert_eq!(r.semantic(), 0.5);
        assert_eq!(r.pois(), vec![VertexId(3), VertexId(5)]);
        assert_eq!(r.last_poi(), Some(VertexId(5)));
    }

    #[test]
    fn extension_shares_prefix() {
        let base = PartialRoute::empty().extend(VertexId(1), Cost::new(1.0), 1.0);
        let a = base.extend(VertexId(2), Cost::new(1.0), 1.0);
        let b = base.extend(VertexId(3), Cost::new(2.0), 0.9);
        // Extending one branch must not disturb the other.
        assert_eq!(a.pois(), vec![VertexId(1), VertexId(2)]);
        assert_eq!(b.pois(), vec![VertexId(1), VertexId(3)]);
        assert_eq!(base.pois(), vec![VertexId(1)]);
    }

    #[test]
    fn contains_checks_whole_route() {
        let r = PartialRoute::empty().extend(VertexId(1), Cost::ZERO, 1.0).extend(
            VertexId(2),
            Cost::ZERO,
            1.0,
        );
        assert!(r.contains(VertexId(1)));
        assert!(r.contains(VertexId(2)));
        assert!(!r.contains(VertexId(3)));
    }

    #[test]
    fn semantic_is_monotone_under_extension() {
        // Lemma 5.2: s(R) ≤ s(R ⊕ p).
        let r = PartialRoute::empty().extend(VertexId(1), Cost::ZERO, 0.8);
        let r2 = r.extend(VertexId(2), Cost::ZERO, 0.9);
        assert!(r2.semantic() >= r.semantic());
    }

    #[test]
    fn dominance_definition_4_1() {
        // Strictly better in one, at least as good in the other.
        assert!(sky(1.0, 0.5).dominates(&sky(2.0, 0.5)));
        assert!(sky(1.0, 0.4).dominates(&sky(1.0, 0.5)));
        assert!(sky(1.0, 0.4).dominates(&sky(2.0, 0.5)));
        // Equivalent routes do not dominate each other.
        assert!(!sky(1.0, 0.5).dominates(&sky(1.0, 0.5)));
        assert!(sky(1.0, 0.5).equivalent(&sky(1.0, 0.5)));
        // Incomparable routes.
        assert!(!sky(1.0, 0.5).dominates(&sky(0.5, 0.9)));
        assert!(!sky(0.5, 0.9).dominates(&sky(1.0, 0.5)));
    }

    #[test]
    fn equivalent_skylines_is_a_tolerant_multiset_match() {
        let a = vec![sky(10.0, 0.0), sky(5.0, 0.5)];
        // Same scores in another order, one perturbed below SCORE_EPS.
        let b = vec![sky(5.0 + 1e-12, 0.5), sky(10.0, 0.0)];
        assert!(equivalent_skylines(&a, &b));
        assert!(equivalent_skylines(&[], &[]));
        // Size mismatch.
        assert!(!equivalent_skylines(&a, &b[..1]));
        // Score mismatch.
        let c = vec![sky(5.0, 0.5), sky(11.0, 0.0)];
        assert!(!equivalent_skylines(&a, &c));
        // Duplicated scores must match one-to-one, not many-to-one.
        let d = vec![sky(5.0, 0.5), sky(5.0, 0.5)];
        assert!(!equivalent_skylines(&a, &d));
        assert!(equivalent_skylines(&d, &d));
        // Near-tie straddling the tolerance: x ~ y and y ~ z but x !~ z.
        // An unsorted greedy pass would pair e[0] with f[0] and strand the
        // rest; sorting both sides first finds the crossing matching.
        let eps = SCORE_EPS * 5.0;
        let e = vec![sky(5.0, 0.0), sky(5.0 + 1.6 * eps, 0.0)];
        let f = vec![sky(5.0 + 0.8 * eps, 0.0), sky(5.0, 0.0)];
        assert!(equivalent_skylines(&e, &f));
        assert!(equivalent_skylines(&f, &e));
    }

    #[test]
    fn into_skyline_route_copies_scores() {
        let r = PartialRoute::empty().extend(VertexId(7), Cost::new(4.0), 0.5);
        let s = r.into_skyline_route();
        assert_eq!(s.pois, vec![VertexId(7)]);
        assert_eq!(s.length, Cost::new(4.0));
        assert_eq!(s.semantic, 0.5);
    }
}
