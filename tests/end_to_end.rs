//! End-to-end pipeline tests: dataset generation → workload → queries →
//! persistence, with the structural invariants each stage guarantees.

use skysr::core::bssr::{Bssr, BssrConfig, LowerBoundMode, QueuePolicy};
use skysr::graph::connectivity::is_connected;
use skysr::prelude::*;

fn tiny(preset: Preset, scale: f64, seed: u64) -> Dataset {
    DatasetSpec::preset(preset).scale(scale).seed(seed).generate()
}

#[test]
fn all_presets_generate_valid_datasets() {
    for (preset, scale) in
        [(Preset::TokyoSmall, 0.05), (Preset::NycSmall, 0.03), (Preset::CalSmall, 0.06)]
    {
        let d = tiny(preset, scale, 11);
        assert!(is_connected(&d.graph), "{} disconnected", d.name);
        let (v, p, e) = d.stats();
        assert!(v > 0 && p > 0 && e >= v - 1, "{}: |V|={v} |P|={p} |E|={e}", d.name);
        // Every PoI vertex has coordinates (it was embedded on an edge).
        for &poi in &d.poi_vertices {
            assert!(d.graph.coords_of(poi).is_some());
        }
    }
}

#[test]
fn ablation_configs_agree_on_real_workload() {
    let d = tiny(Preset::TokyoSmall, 0.06, 13);
    let ctx = d.context();
    let w = WorkloadSpec::new(3).queries(5).seed(3).generate(&d);
    let configs = [
        BssrConfig::default(),
        BssrConfig::unoptimized(),
        BssrConfig { use_init_search: false, ..BssrConfig::default() },
        BssrConfig { queue_policy: QueuePolicy::DistanceBased, ..BssrConfig::default() },
        BssrConfig { lower_bound: LowerBoundMode::Off, ..BssrConfig::default() },
        BssrConfig { use_cache: false, ..BssrConfig::default() },
    ];
    for q in &w.queries {
        let reference = Bssr::new(&ctx).run(q).unwrap().routes;
        assert!(!reference.is_empty());
        for cfg in configs {
            let got = Bssr::with_config(&ctx, cfg).run(q).unwrap().routes;
            assert_eq!(got.len(), reference.len(), "{cfg:?} on {q:?}");
            for (g, r) in got.iter().zip(&reference) {
                assert!(
                    (g.length.get() - r.length.get()).abs() <= 1e-6 * (1.0 + r.length.get()),
                    "{cfg:?}: {g:?} vs {r:?}"
                );
                assert!((g.semantic - r.semantic).abs() <= 1e-9);
            }
        }
    }
}

#[test]
fn skyline_has_perfect_route_and_is_sorted() {
    let d = tiny(Preset::CalSmall, 0.08, 17);
    let ctx = d.context();
    let w = WorkloadSpec::new(3).queries(8).seed(4).generate(&d);
    let mut engine = Bssr::new(&ctx);
    for q in &w.queries {
        let routes = engine.run(q).unwrap().routes;
        // Workload categories are populated, so a perfect route exists and
        // the skyline must contain one (it cannot be dominated).
        assert!(routes.iter().any(|r| r.semantic == 0.0), "{q:?}");
        // Sorted by length ascending; semantic must strictly decrease.
        for pair in routes.windows(2) {
            assert!(pair[0].length <= pair[1].length);
            assert!(pair[0].semantic > pair[1].semantic);
        }
    }
}

#[test]
fn optimisations_reduce_search_effort_at_scale() {
    let d = tiny(Preset::TokyoSmall, 0.15, 23);
    let ctx = d.context();
    let w = WorkloadSpec::new(4).queries(4).seed(5).generate(&d);
    let mut opt = Bssr::new(&ctx);
    let mut plain = Bssr::with_config(&ctx, BssrConfig::unoptimized());
    let (mut settled_opt, mut settled_plain, mut cache_hits) = (0u64, 0u64, 0u64);
    for q in &w.queries {
        let a = opt.run(q).unwrap().stats;
        let b = plain.run(q).unwrap().stats;
        settled_opt += a.search.settled;
        settled_plain += b.search.settled;
        cache_hits += a.cache_hits;
    }
    assert!(settled_opt < settled_plain, "optimised {settled_opt} vs plain {settled_plain}");
    assert!(cache_hits > 0, "on-the-fly cache never hit at |Sq| = 4");
}

#[test]
fn codec_roundtrip_preserves_query_semantics() {
    let d = tiny(Preset::NycSmall, 0.02, 29);
    let path = std::env::temp_dir().join("skysr_e2e_roundtrip.txt");
    skysr::data::codec::save_dataset(&d, &path).unwrap();
    let d2 = skysr::data::codec::load_dataset(&path).unwrap();
    std::fs::remove_file(&path).ok();
    let w = WorkloadSpec::new(2).queries(4).seed(8).generate(&d);
    let ctx1 = d.context();
    let ctx2 = d2.context();
    let mut e1 = Bssr::new(&ctx1);
    let mut e2 = Bssr::new(&ctx2);
    for q in &w.queries {
        assert_eq!(e1.run(q).unwrap().routes, e2.run(q).unwrap().routes);
    }
}

#[test]
fn number_of_skysrs_grows_with_sequence_length() {
    // Figure 6's trend: more positions ⇒ more trade-off opportunities ⇒
    // (weakly) more skyline routes on average.
    let d = tiny(Preset::CalSmall, 0.1, 37);
    let ctx = d.context();
    let mut engine = Bssr::new(&ctx);
    let mut means = Vec::new();
    for k in [2usize, 4] {
        let w = WorkloadSpec::new(k).queries(10).seed(6).generate(&d);
        let total: usize = w.queries.iter().map(|q| engine.run(q).unwrap().routes.len()).sum();
        means.push(total as f64 / w.queries.len() as f64);
    }
    assert!(means[1] >= means[0], "expected |Sq|=4 to yield at least as many SkySRs: {means:?}");
}

#[test]
fn unmatchable_category_yields_empty_result_everywhere() {
    // A leaf category with no PoIs: query returns empty for BSSR and both
    // baselines.
    let d = tiny(Preset::TokyoSmall, 0.03, 41);
    let ctx = d.context();
    let unpopulated = d.forest.leaves().find(|&c| d.pois.pois_with_exact_category(c).is_empty());
    let Some(c) = unpopulated else {
        return; // every leaf populated at this scale — nothing to test
    };
    // The whole tree must be empty for the query to be unmatchable; pick
    // the root's tree only if empty, otherwise skip.
    if !d.pois.pois_in_tree_of(&d.forest, c).is_empty() {
        return;
    }
    let q = skysr::core::SkySrQuery::new(skysr::graph::VertexId(0), [c]);
    assert!(Bssr::new(&ctx).run(&q).unwrap().routes.is_empty());
}
