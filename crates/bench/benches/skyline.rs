//! Micro-benchmarks for skyline-set maintenance and the route
//! representation (shared-prefix links vs vector cloning — the design
//! ablation called out in DESIGN.md).

use criterion::{criterion_group, criterion_main, Criterion};
use skysr_core::dominance::SkylineSet;
use skysr_core::route::{PartialRoute, SkylineRoute};
use skysr_graph::{Cost, VertexId};
use std::hint::black_box;

fn bench_skyline_set(c: &mut Criterion) {
    // A stream of candidate routes with anti-correlated scores plus noise,
    // resembling what BSSR feeds the set.
    let candidates: Vec<SkylineRoute> = (0..512)
        .map(|i| {
            let x = (i as f64 * 0.618).fract();
            SkylineRoute {
                pois: vec![VertexId(i as u32)],
                length: Cost::new(1000.0 * (1.0 - x) + (i % 7) as f64),
                semantic: x * 0.9,
            }
        })
        .collect();
    c.bench_function("skyline_set_insert_512", |b| {
        b.iter(|| {
            let mut s = SkylineSet::new();
            for r in &candidates {
                s.update(r.clone());
            }
            black_box(s.len())
        })
    });

    let mut set = SkylineSet::new();
    for r in &candidates {
        set.update(r.clone());
    }
    c.bench_function("skyline_threshold_lookup", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for i in 0..100 {
                acc += set.threshold(i as f64 / 100.0).get();
            }
            black_box(acc)
        })
    });
}

fn bench_route_representation(c: &mut Criterion) {
    // Shared-prefix PartialRoute vs naive Vec cloning for the fan-out
    // pattern of queue extension (one prefix, many children).
    c.bench_function("route_extend_shared_prefix", |b| {
        b.iter(|| {
            let base = PartialRoute::empty().extend(VertexId(1), Cost::new(1.0), 1.0).extend(
                VertexId(2),
                Cost::new(1.0),
                0.9,
            );
            let mut total = 0usize;
            for i in 0..256u32 {
                let child = base.extend(VertexId(10 + i), Cost::new(2.0), 0.8);
                total += child.len();
            }
            black_box(total)
        })
    });

    c.bench_function("route_extend_vec_clone", |b| {
        b.iter(|| {
            let base: Vec<VertexId> = vec![VertexId(1), VertexId(2)];
            let mut total = 0usize;
            for i in 0..256u32 {
                let mut child = base.clone();
                child.push(VertexId(10 + i));
                total += child.len();
            }
            black_box(total)
        })
    });
}

criterion_group!(benches, bench_skyline_set, bench_route_representation);
criterion_main!(benches);
