//! Per-query instrumentation — the raw material for Tables 7–8 and
//! Figures 4–5.

use std::time::Duration;

use skysr_graph::SearchStats;

/// Counters and timings for one SkySR query execution.
#[derive(Clone, Debug, Default)]
pub struct QueryStats {
    /// Number of modified-Dijkstra executions actually run (cache misses).
    pub mdijkstra_runs: u64,
    /// Number of modified-Dijkstra invocations answered by the on-the-fly
    /// cache.
    pub cache_hits: u64,
    /// Aggregate graph-search counters (settled / relaxed / weight sum).
    pub search: SearchStats,
    /// Weight sum of the *first* modified Dijkstra execution — Table 7's
    /// "search space" metric.
    pub first_mdijkstra_weight_sum: f64,
    /// Number of sequenced routes found by the initial search (Table 7).
    pub init_routes: usize,
    /// Wall time of the initial search (Table 7).
    pub init_time: Duration,
    /// Table 7's "Ratio": length of the initial route with the largest
    /// semantic score divided by the length of the initial perfect route.
    pub init_length_ratio: Option<f64>,
    /// Per-gap semantic-match minimum distances `ls[i]` (Figure 4).
    pub ls: Vec<f64>,
    /// Per-gap perfect-match minimum distances `lp[i]` (Figure 4).
    pub lp: Vec<f64>,
    /// Sequenced routes seeded from a cached prefix skyline before the
    /// search started (warm start; 0 for cold runs).
    pub warm_seed_routes: usize,
    /// Routes pushed into the route priority queue.
    pub routes_enqueued: u64,
    /// Maximum size the route queue reached.
    pub queue_peak: usize,
    /// Candidate routes discarded by the threshold test (Lemma 5.3).
    pub threshold_prunes: u64,
    /// Candidate routes discarded by the minimum-distance lower bounds
    /// (§5.3.3 / Lemma 5.8).
    pub lower_bound_prunes: u64,
    /// Total wall time of the query.
    pub total_time: Duration,
}

impl QueryStats {
    /// Sum of ls over remaining gaps (diagnostic).
    pub fn ls_total(&self) -> f64 {
        self.ls.iter().sum()
    }

    /// Sum of lp over remaining gaps (diagnostic).
    pub fn lp_total(&self) -> f64 {
        self.lp.iter().sum()
    }

    /// Total modified-Dijkstra invocations (runs + cache hits) — Figure 5's
    /// y-axis counts runs only, the invocation count shows the gap.
    pub fn mdijkstra_invocations(&self) -> u64 {
        self.mdijkstra_runs + self.cache_hits
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals() {
        let s = QueryStats { ls: vec![1.0, 2.0], lp: vec![3.0], ..Default::default() };
        assert_eq!(s.ls_total(), 3.0);
        assert_eq!(s.lp_total(), 3.0);
    }

    #[test]
    fn invocation_count() {
        let s = QueryStats { mdijkstra_runs: 5, cache_hits: 3, ..Default::default() };
        assert_eq!(s.mdijkstra_invocations(), 8);
    }
}
