//! Planner-equivalence property: for random workloads, the planned
//! pipeline (exact-hit → coalesce → repair → warm-seed → cold) returns
//! score-equivalent skylines to a plan-disabled cold-search oracle under
//! **every strategy subset** — all strategies on, each of prefix /
//! ancestor / suffix / repair toggled off individually, and everything
//! off. The oracle is the replay driver's `--verify` machinery itself: a
//! sequential cold [`Bssr`](skysr_core::bssr::Bssr) run at each
//! response's pinned epoch, with mid-stream weight-update waves so the
//! repair rung genuinely crosses epochs.
//!
//! Also pins the per-strategy seed counters: a toggled-off source never
//! fires, and on the hierarchy workload the all-on pipeline fires *both*
//! new sources (ancestor + suffix) — the acceptance gates CI asserts on.

use std::sync::Arc;

use skysr_data::dataset::{Dataset, DatasetSpec, Preset};
use skysr_service::replay::{build_pool, replay_on, ReplaySpec, StreamPattern};
use skysr_service::ServiceContext;

/// One strategy subset of the ladder under test.
#[derive(Clone, Copy, Debug)]
struct Subset {
    name: &'static str,
    prefix: bool,
    ancestor: bool,
    suffix: bool,
    repair: bool,
}

const SUBSETS: [Subset; 6] = [
    Subset { name: "all-on", prefix: true, ancestor: true, suffix: true, repair: true },
    Subset { name: "no-prefix", prefix: false, ancestor: true, suffix: true, repair: true },
    Subset { name: "no-ancestor", prefix: true, ancestor: false, suffix: true, repair: true },
    Subset { name: "no-suffix", prefix: true, ancestor: true, suffix: false, repair: true },
    Subset { name: "no-repair", prefix: true, ancestor: true, suffix: true, repair: false },
    Subset { name: "all-off", prefix: false, ancestor: false, suffix: false, repair: false },
];

fn dataset(seed: u64) -> Dataset {
    DatasetSpec::preset(Preset::CalSmall).scale(0.08).seed(seed).generate()
}

/// Replays `pattern` under `subset` with synchronous update waves and the
/// epoch-aware oracle, over two cycles of the pool (cycle 1 exercises the
/// seed rungs, cycle 2 the exact-hit and repair rungs).
fn spec_for(subset: Subset, pattern: StreamPattern, distinct: usize, seed: u64) -> ReplaySpec {
    let chain = match pattern {
        StreamPattern::Hierarchy => 3,
        StreamPattern::PrefixChains => 2, // seq_len below
        _ => 1,
    };
    let pool_len = distinct * chain;
    ReplaySpec {
        total: pool_len * 2,
        distinct,
        seq_len: 2,
        pattern,
        workers: 4,
        seed,
        prefix_reuse: subset.prefix,
        ancestor_reuse: subset.ancestor,
        suffix_reuse: subset.suffix,
        repair: subset.repair,
        // One weight-delta wave mid-cycle and one at the cycle boundary:
        // cached entries from cycle 1 are stale by cycle 2, so the repair
        // (or lazy-invalidation) rung runs for real.
        update_every: pool_len / 2,
        update_burst: 4,
        update_magnitude: 2.0,
        verify: true,
        ..ReplaySpec::default()
    }
}

#[test]
fn every_strategy_subset_is_oracle_exact_on_hierarchy_workloads() {
    for seed in [11u64, 29] {
        let d = dataset(seed);
        // 12 chains, waves of pool_len/2 = 18: the second wave's full
        // queries trail their same-epoch ancestor variants by a whole
        // worker round, so the ancestor rung fires with margin instead of
        // hanging on one dequeue-vs-complete race.
        let probe = spec_for(SUBSETS[0], StreamPattern::Hierarchy, 12, seed);
        let pool = build_pool(&d, &probe);
        let ctx = Arc::new(ServiceContext::from_dataset(d));
        for subset in SUBSETS {
            let spec = spec_for(subset, StreamPattern::Hierarchy, 12, seed);
            let report = replay_on(Arc::clone(&ctx), &pool, &spec);
            assert_eq!(
                report.verify_mismatches,
                Some(0),
                "subset {} (seed {seed}) diverged from the cold-search oracle",
                subset.name
            );
            assert_eq!(report.stale_served(), 0, "subset {} served stale", subset.name);
            let m = &report.metrics;
            if !subset.ancestor {
                assert_eq!(m.seeded_ancestor, 0, "{}: toggled-off source fired", subset.name);
            }
            if !subset.suffix {
                assert_eq!(m.seeded_suffix, 0, "{}: toggled-off source fired", subset.name);
            }
            if !subset.prefix {
                assert_eq!(m.seeded_prefix, 0, "{}: toggled-off source fired", subset.name);
            }
            if !subset.repair {
                assert_eq!(m.repairs + m.repair_fallbacks, 0, "{}: repair fired", subset.name);
            }
            if subset.name == "all-on" {
                assert!(
                    m.seeded_ancestor > 0,
                    "the hierarchy workload must ancestor-seed (seed {seed}): {m:?}"
                );
                assert!(
                    m.seeded_suffix > 0,
                    "the hierarchy workload must suffix-seed (seed {seed}): {m:?}"
                );
            }
        }
    }
}

#[test]
fn every_strategy_subset_is_oracle_exact_on_prefix_workloads() {
    let seed = 17u64;
    let d = dataset(seed);
    let probe = spec_for(SUBSETS[0], StreamPattern::PrefixChains, 8, seed);
    let pool = build_pool(&d, &probe);
    let ctx = Arc::new(ServiceContext::from_dataset(d));
    for subset in SUBSETS {
        let spec = spec_for(subset, StreamPattern::PrefixChains, 8, seed);
        let report = replay_on(Arc::clone(&ctx), &pool, &spec);
        assert_eq!(
            report.verify_mismatches,
            Some(0),
            "subset {} diverged from the cold-search oracle",
            subset.name
        );
        assert_eq!(report.stale_served(), 0);
        if !subset.prefix {
            assert_eq!(report.metrics.seeded_prefix, 0);
        }
    }
}

#[test]
fn bounded_retention_verification_skips_instead_of_refusing() {
    // The former hard conflict: `--verify` plus `--retention`. Verification
    // now audits what is still pinnable and counts what is not.
    let d = dataset(41);
    let spec = ReplaySpec {
        total: 300,
        distinct: 12,
        seq_len: 2,
        workers: 4,
        seed: 41,
        repair: true,
        retention: 3,
        update_every: 20,
        update_burst: 6,
        verify: true,
        ..ReplaySpec::default()
    };
    let pool = build_pool(&d, &spec);
    let ctx = Arc::new(ServiceContext::from_dataset(d));
    let report = replay_on(ctx, &pool, &spec);
    let skipped = report.verify_skipped.expect("verification ran");
    let mismatches = report.verify_mismatches.expect("verification ran");
    assert_eq!(mismatches, 0, "every auditable response must be oracle-exact");
    assert!(
        skipped > 0,
        "15 update waves against a 3-epoch ring must compact epochs the stream served under \
         (skipped {skipped}, published {})",
        report.epochs_published
    );
    assert!(
        skipped < report.total,
        "recent responses stay auditable (skipped {skipped} of {})",
        report.total
    );
    assert_eq!(report.stale_served(), 0);
    // The report surfaces the skip count.
    let text = report.to_string();
    assert!(text.contains("unverifiable"), "{text}");
}
