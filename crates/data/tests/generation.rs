//! Property-based tests for the dataset substrate: the generators must
//! deliver the structural guarantees the algorithms rely on, for arbitrary
//! parameter combinations.

use proptest::prelude::*;
use skysr_data::dataset::{DatasetSpec, ForestKind, Preset};
use skysr_data::netgen::{generate_network, NetGenSpec};
use skysr_data::zipf::Zipf;
use skysr_graph::connectivity::is_connected;
use skysr_graph::GeoPoint;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn networks_are_always_connected(
        vertices in 16usize..600,
        edge_factor in 1.0f64..2.4,
        seed in 0u64..1000,
    ) {
        let (b, _, _) = generate_network(&NetGenSpec {
            target_vertices: vertices,
            edge_factor,
            center: GeoPoint::new(35.0, 139.0),
            extent_deg: 0.3,
            seed,
        });
        let g = b.build();
        prop_assert!(is_connected(&g));
        prop_assert!(g.num_edges() >= g.num_vertices() - 1);
        // Density lands near the request (within rounding and the spanning
        // minimum).
        let ratio = g.num_edges() as f64 / g.num_vertices() as f64;
        prop_assert!(ratio >= 0.95 && ratio <= edge_factor + 0.15, "ratio {ratio}");
    }

    #[test]
    fn datasets_embed_every_poi(seed in 0u64..50) {
        let spec = DatasetSpec {
            name: "prop".into(),
            vertices: 120,
            pois: 60,
            edge_factor: 1.3,
            forest: ForestKind::Uniform { trees: 3, height: 3, branching: 2 },
            poi_clusters: 2,
            cluster_fraction: 0.5,
            zipf_exponent: 1.0,
            center: GeoPoint::new(35.0, 139.0),
            extent_deg: 0.2,
            seed,
        };
        let d = spec.generate();
        prop_assert!(is_connected(&d.graph));
        prop_assert_eq!(d.pois.num_pois(), 60);
        for &p in &d.poi_vertices {
            prop_assert!(!d.pois.categories_of(p).is_empty());
            prop_assert!(d.graph.degree(p) >= 2);
            // Only leaf categories are assigned.
            for &c in d.pois.categories_of(p) {
                prop_assert!(d.forest.is_leaf(c));
            }
        }
    }

    #[test]
    fn zipf_cdf_is_monotone_and_normalised(n in 1usize..200, s in 0.0f64..2.5) {
        let z = Zipf::new(n, s);
        prop_assert_eq!(z.len(), n);
        use rand::{rngs::StdRng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..100 {
            prop_assert!(z.sample(&mut rng) < n);
        }
    }
}

#[test]
fn ratings_are_deterministic_and_in_range() {
    let d = DatasetSpec::preset(Preset::CalSmall).scale(0.05).seed(3).generate();
    let a = d.ratings(9);
    let b = d.ratings(9);
    for &p in &d.poi_vertices {
        let r = a.get(p);
        assert!((0.0..=1.0).contains(&r));
        assert_eq!(r, b.get(p));
    }
    let c = d.ratings(10);
    assert!(d.poi_vertices.iter().any(|&p| a.get(p) != c.get(p)));
}

#[test]
fn rated_queries_run_on_generated_data() {
    use skysr_core::variants::rated::RatedQuery;
    let d = DatasetSpec::preset(Preset::CalSmall).scale(0.05).seed(4).generate();
    let ctx = d.context();
    let ratings = d.ratings(1);
    let w = skysr_data::workload::WorkloadSpec::new(2).queries(2).seed(2).generate(&d);
    for q in &w.queries {
        let r2 = skysr_core::bssr::Bssr::new(&ctx).run(q).unwrap();
        let r3 = RatedQuery::new(q.clone()).run(&ctx, &ratings).unwrap();
        // 3-D skylines contain at least as many trade-offs.
        assert!(r3.routes.len() >= r2.routes.len());
        // Every 2-D skyline score pair appears among the 3-D routes'
        // (length, semantic) projections or is dominated there.
        for r in &r2.routes {
            assert!(
                r3.routes.iter().any(|x| (x.length.get() - r.length.get()).abs() < 1e-6
                    && (x.semantic - r.semantic).abs() < 1e-9),
                "2-D member missing from 3-D skyline: {r:?}"
            );
        }
    }
}
