//! Experiment drivers — one function per table/figure of §7.
//!
//! Each driver prints its table to stdout in the paper's row/series layout
//! so measured numbers can be placed side by side with the published ones
//! (see `EXPERIMENTS.md` at the workspace root).

use skysr_core::bssr::{Bssr, BssrConfig, LowerBoundMode, QueuePolicy};
use skysr_data::dataset::Dataset;
use skysr_data::workload::WorkloadSpec;

use crate::config::ExpConfig;
use crate::runner::{mean_of, run_batch, Algo, BatchResult, RunOpts};
use crate::table::{fmt_ms, Table};

fn workload(cfg: &ExpConfig, d: &Dataset, k: usize, n: usize) -> Vec<skysr_core::SkySrQuery> {
    WorkloadSpec::new(k).queries(n).seed(cfg.seed).generate(d).queries
}

fn baseline_cell(r: &BatchResult) -> String {
    if r.executed == 0 {
        format!("> cap ({} skipped)", r.skipped)
    } else if r.skipped > 0 {
        format!("{} ({} skipped)", fmt_ms(r.mean_ms), r.skipped)
    } else {
        fmt_ms(r.mean_ms)
    }
}

/// Figure 3: response time vs |S_q| for all four algorithms.
pub fn fig3(cfg: &ExpConfig, datasets: &[Dataset]) {
    println!("# Figure 3 — mean response time [ms] vs |Sq|\n");
    let opts = RunOpts { baseline_max_combos: cfg.baseline_max_combos };
    for d in datasets {
        let ctx = d.context();
        let mut t = Table::new(vec!["|Sq|", "BSSR", "BSSR w/o Opt", "PNE", "Dij"]);
        for k in 2..=cfg.seq_max {
            let qs = workload(cfg, d, k, cfg.queries);
            let bqs = workload(cfg, d, k, cfg.baseline_queries);
            let bssr = run_batch(&ctx, &qs, Algo::Bssr, opts);
            let noopt = run_batch(&ctx, &qs, Algo::BssrNoOpt, opts);
            let pne = run_batch(&ctx, &bqs, Algo::Pne, opts);
            let dij = run_batch(&ctx, &bqs, Algo::Dij, opts);
            t.row(vec![
                k.to_string(),
                fmt_ms(bssr.mean_ms),
                fmt_ms(noopt.mean_ms),
                baseline_cell(&pne),
                baseline_cell(&dij),
            ]);
        }
        println!(
            "## {} ({} queries; {} for baselines, combo cap {})",
            d.name, cfg.queries, cfg.baseline_queries, cfg.baseline_max_combos
        );
        println!("{t}");
    }
}

/// Table 6: peak live-heap bytes per algorithm at |S_q| = 4.
///
/// Meaningful only in binaries that install [`crate::alloc::CountingAlloc`]
/// as the global allocator (`table6_memory`, `report`).
pub fn table6(cfg: &ExpConfig, datasets: &[Dataset]) {
    println!("# Table 6 — peak heap during query batch (|Sq| = 4)\n");
    let k = cfg.seq_max.min(4);
    let opts = RunOpts { baseline_max_combos: cfg.baseline_max_combos };
    let mut t = Table::new(vec!["Dataset", "graph", "BSSR", "BSSR w/o Opt", "PNE", "Dij"]);
    for d in datasets {
        let ctx = d.context();
        let qs = workload(cfg, d, k, cfg.baseline_queries);
        let mut cells = vec![d.name.clone(), crate::alloc::fmt_bytes(d.graph.heap_bytes())];
        for algo in [Algo::Bssr, Algo::BssrNoOpt, Algo::Pne, Algo::Dij] {
            crate::alloc::reset_peak();
            let before = crate::alloc::current_bytes();
            let r = run_batch(&ctx, &qs, algo, opts);
            let peak = crate::alloc::peak_bytes().saturating_sub(before);
            cells.push(if r.executed == 0 {
                "> cap".into()
            } else {
                crate::alloc::fmt_bytes(peak)
            });
        }
        t.row(cells);
    }
    println!("{t}");
}

/// Table 7: effect of the initial search.
pub fn table7(cfg: &ExpConfig, datasets: &[Dataset]) {
    println!("# Table 7 — effect of the initial search (NNinit)\n");
    for d in datasets {
        let ctx = d.context();
        let mut t = Table::new(vec![
            "|Sq|",
            "weight sum w/ init",
            "weight sum w/o init",
            "NNinit time [ms]",
            "# init routes",
            "length ratio",
        ]);
        for k in 2..=cfg.seq_max {
            let qs = workload(cfg, d, k, cfg.queries);
            let with = run_batch(&ctx, &qs, Algo::Bssr, RunOpts::default());
            let mut no_init = Bssr::with_config(
                &ctx,
                BssrConfig { use_init_search: false, ..BssrConfig::default() },
            );
            let mut wo_sum = 0.0;
            for q in &qs {
                wo_sum += no_init.run(q).unwrap().stats.first_mdijkstra_weight_sum;
            }
            let ratio_mean = {
                let rs: Vec<f64> = with.stats.iter().filter_map(|s| s.init_length_ratio).collect();
                if rs.is_empty() {
                    f64::NAN
                } else {
                    rs.iter().sum::<f64>() / rs.len() as f64
                }
            };
            t.row(vec![
                k.to_string(),
                format!("{:.3e}", mean_of(&with.stats, |s| s.first_mdijkstra_weight_sum)),
                format!("{:.3e}", wo_sum / qs.len() as f64),
                fmt_ms(mean_of(&with.stats, |s| s.init_time.as_secs_f64() * 1e3)),
                format!("{:.2}", mean_of(&with.stats, |s| s.init_routes as f64)),
                format!("{ratio_mean:.2}"),
            ]);
        }
        println!("## {}", d.name);
        println!("{t}");
    }
}

/// Table 8: vertices visited, proposed vs distance-based queue.
pub fn table8(cfg: &ExpConfig, datasets: &[Dataset]) {
    println!("# Table 8 — vertices visited: proposed vs distance-based queue\n");
    for d in datasets {
        let ctx = d.context();
        let mut t = Table::new(vec!["|Sq|", "Proposed", "Distance-based"]);
        for k in 2..=cfg.seq_max {
            let qs = workload(cfg, d, k, cfg.queries);
            let mut visited = [0.0f64; 2];
            for (i, policy) in
                [QueuePolicy::Proposed, QueuePolicy::DistanceBased].into_iter().enumerate()
            {
                let mut engine = Bssr::with_config(
                    &ctx,
                    BssrConfig { queue_policy: policy, ..BssrConfig::default() },
                );
                let mut sum = 0u64;
                for q in &qs {
                    sum += engine.run(q).unwrap().stats.search.settled;
                }
                visited[i] = sum as f64 / qs.len() as f64;
            }
            t.row(vec![k.to_string(), format!("{:.0}", visited[0]), format!("{:.0}", visited[1])]);
        }
        println!("## {}", d.name);
        println!("{t}");
    }
}

/// Figure 4: ratios of the possible minimum distances to the initial
/// perfect route length (|S_q| = max).
pub fn fig4(cfg: &ExpConfig, datasets: &[Dataset]) {
    println!(
        "# Figure 4 — minimum-distance bounds relative to the initial route (|Sq| = {})\n",
        cfg.seq_max
    );
    let mut t = Table::new(vec!["Dataset", "semantic-match ls", "perfect-match lp"]);
    for d in datasets {
        let ctx = d.context();
        let qs = workload(cfg, d, cfg.seq_max, cfg.queries);
        let mut engine = Bssr::new(&ctx);
        let (mut ls_ratio, mut lp_ratio, mut n) = (0.0, 0.0, 0);
        for q in &qs {
            let result = engine.run(q).unwrap();
            let Some(perfect) =
                result.routes.iter().find(|r| r.semantic == 0.0).map(|r| r.length.get())
            else {
                continue;
            };
            if perfect <= 0.0 {
                continue;
            }
            ls_ratio += result.stats.ls_total() / perfect;
            lp_ratio += result.stats.lp_total() / perfect;
            n += 1;
        }
        if n > 0 {
            t.row(vec![
                d.name.clone(),
                format!("{:.4}", ls_ratio / n as f64),
                format!("{:.4}", lp_ratio / n as f64),
            ]);
        }
    }
    println!("{t}");
}

/// Figure 5: modified-Dijkstra executions with vs without the cache.
pub fn fig5(cfg: &ExpConfig, datasets: &[Dataset]) {
    println!("# Figure 5 — modified-Dijkstra executions, with vs without cache\n");
    for d in datasets {
        let ctx = d.context();
        let mut t = Table::new(vec!["|Sq|", "with cache", "w/o cache", "cache hits"]);
        for k in 2..=cfg.seq_max {
            let qs = workload(cfg, d, k, cfg.queries);
            let mut with = Bssr::new(&ctx);
            let mut without =
                Bssr::with_config(&ctx, BssrConfig { use_cache: false, ..BssrConfig::default() });
            let (mut runs_w, mut hits, mut runs_wo) = (0u64, 0u64, 0u64);
            for q in &qs {
                let s = with.run(q).unwrap().stats;
                runs_w += s.mdijkstra_runs;
                hits += s.cache_hits;
                runs_wo += without.run(q).unwrap().stats.mdijkstra_runs;
            }
            let n = qs.len() as f64;
            t.row(vec![
                k.to_string(),
                format!("{:.1}", runs_w as f64 / n),
                format!("{:.1}", runs_wo as f64 / n),
                format!("{:.1}", hits as f64 / n),
            ]);
        }
        println!("## {}", d.name);
        println!("{t}");
    }
}

/// Figure 6: number of SkySRs vs |S_q|.
pub fn fig6(cfg: &ExpConfig, datasets: &[Dataset]) {
    println!("# Figure 6 — number of skyline sequenced routes\n");
    let mut t = Table::new(vec!["|Sq|", "Tokyo", "NYC", "Cal"]);
    let mut columns: Vec<Vec<String>> = Vec::new();
    for d in datasets {
        let ctx = d.context();
        let mut engine = Bssr::new(&ctx);
        let mut col = Vec::new();
        for k in 2..=cfg.seq_max {
            let qs = workload(cfg, d, k, cfg.queries);
            let mut total = 0usize;
            for q in &qs {
                total += engine.run(q).unwrap().routes.len();
            }
            col.push(format!("{:.2}", total as f64 / qs.len() as f64));
        }
        columns.push(col);
    }
    for (i, k) in (2..=cfg.seq_max).enumerate() {
        let mut row = vec![k.to_string()];
        for col in &columns {
            row.push(col[i].clone());
        }
        t.row(row);
    }
    println!("{t}");
}

/// Tables 1 & 9: example skyline route sets on the scenario fixtures.
pub fn table1_and_9() {
    use skysr_core::QueryContext;
    println!("# Table 1 — example skyline routes in New York\n");
    let s = crate::fixtures::table1_fixture();
    let ctx = QueryContext::new(&s.graph, &s.forest, &s.pois);
    let result = Bssr::new(&ctx).run(&s.query).unwrap();
    let mut t = Table::new(vec!["Distance", "Semantic", "Sequenced route"]);
    for r in result.routes.iter().rev() {
        t.row(vec![
            format!("{:.0} meters", r.length.get()),
            format!("{:.3}", r.semantic),
            r.pois.iter().map(|&p| s.poi_label(p)).collect::<Vec<_>>().join(" -> "),
        ]);
    }
    println!("{t}");

    println!("# Table 9 — example SkySRs in Tokyo (with hotel destination)\n");
    let s = crate::fixtures::table9_fixture();
    let ctx = QueryContext::new(&s.graph, &s.forest, &s.pois);
    let dq = skysr_core::variants::destination::DestinationQuery::new(
        s.query.clone(),
        s.destination.expect("table9 has a destination"),
    );
    let result = dq.run(&ctx, BssrConfig::default()).unwrap();
    let mut t = Table::new(vec!["Distance", "Semantic", "Sequenced route"]);
    for r in result.routes.iter().rev() {
        t.row(vec![
            format!("{:.0} meters", r.length.get()),
            format!("{:.3}", r.semantic),
            r.pois.iter().map(|&p| s.poi_label(p)).collect::<Vec<_>>().join(" -> "),
        ]);
    }
    println!("{t}");
}

/// Ablation: lower-bound modes (supplements Figure 4 — shows the pruning
/// the bounds actually buy, a design-choice ablation called out in
/// DESIGN.md).
pub fn ablation_bounds(cfg: &ExpConfig, datasets: &[Dataset]) {
    println!("# Ablation — lower-bound modes (routes enqueued, |Sq| = {})\n", cfg.seq_max);
    let mut t = Table::new(vec!["Dataset", "Off", "Semantic", "Full"]);
    for d in datasets {
        let ctx = d.context();
        let qs = workload(cfg, d, cfg.seq_max, cfg.queries);
        let mut cells = vec![d.name.clone()];
        for mode in [LowerBoundMode::Off, LowerBoundMode::Semantic, LowerBoundMode::Full] {
            let mut engine =
                Bssr::with_config(&ctx, BssrConfig { lower_bound: mode, ..BssrConfig::default() });
            let mut enq = 0u64;
            for q in &qs {
                enq += engine.run(q).unwrap().stats.routes_enqueued;
            }
            cells.push(format!("{:.1}", enq as f64 / qs.len() as f64));
        }
        t.row(cells);
    }
    println!("{t}");
}
