//! End-to-end correctness of the concurrent service on generated cities:
//! concurrency and caching must never change an answer.

use std::sync::Arc;

use skysr_core::bssr::{Bssr, BssrConfig};
use skysr_data::dataset::{Dataset, DatasetSpec, Preset};
use skysr_data::workload::WorkloadSpec;
use skysr_service::replay::{replay, ReplaySpec};
use skysr_service::{QueryService, ServiceConfig, ServiceContext};

fn city() -> Dataset {
    DatasetSpec::preset(Preset::CalSmall).scale(0.08).seed(21).generate()
}

#[test]
fn concurrent_replay_matches_sequential_execution() {
    // The ISSUE's acceptance bar: a skewed replay across ≥ 4 workers whose
    // every answer is identical to a sequential `Bssr::run`, with a
    // nonzero cache hit-rate.
    let spec = ReplaySpec {
        total: 400,
        distinct: 60,
        workers: 4,
        seq_len: 2,
        verify: true,
        ..ReplaySpec::default()
    };
    let report = replay(city(), &spec);
    assert_eq!(report.verify_mismatches, Some(0));
    assert_eq!(report.metrics.completed, 400);
    assert_eq!(report.workers, 4);
    assert!(report.metrics.cache.hits > 0, "skewed stream must hit the cache");
    assert!(report.metrics.executed < report.metrics.completed, "cache hits must save searches");
    assert!(report.metrics.throughput_qps > 0.0);
    assert!(report.metrics.latency_p50 <= report.metrics.latency_p99);
}

#[test]
fn caching_disabled_still_matches_sequential() {
    let spec = ReplaySpec {
        total: 120,
        distinct: 40,
        workers: 4,
        seq_len: 2,
        cache_capacity: 0,
        verify: true,
        ..ReplaySpec::default()
    };
    let report = replay(city(), &spec);
    assert_eq!(report.verify_mismatches, Some(0));
    assert_eq!(report.metrics.executed, 120, "every request runs a search");
    assert_eq!(report.metrics.cache.hits, 0);
}

#[test]
fn cache_hits_equal_cold_runs_on_generated_queries() {
    let dataset = city();
    let workload = WorkloadSpec::new(2).queries(12).seed(3).generate(&dataset);
    let ctx = Arc::new(ServiceContext::from_dataset(dataset));

    // Reference: the plain sequential engine on the borrowed context.
    let qctx = ctx.query_context();
    let mut engine = Bssr::with_config(&qctx, BssrConfig::default());
    let reference: Vec<_> =
        workload.queries.iter().map(|q| engine.run(q).unwrap().routes).collect();

    let service = QueryService::new(
        Arc::clone(&ctx),
        ServiceConfig { workers: 4, ..ServiceConfig::default() },
    );
    let cold = service.run_batch(workload.queries.iter().cloned());
    let warm = service.run_batch(workload.queries.iter().cloned());
    for ((cold, warm), want) in cold.iter().zip(&warm).zip(&reference) {
        let cold = cold.as_ref().unwrap();
        let warm = warm.as_ref().unwrap();
        assert!(warm.cache_hit, "second pass must be served from cache");
        assert_eq!(cold.routes.as_ref(), want.as_slice());
        assert_eq!(warm.routes, cold.routes);
    }
    let m = service.shutdown();
    assert_eq!(m.completed, 24);
    assert_eq!(m.cache.hits, 12);
}

#[test]
fn eviction_pressure_keeps_answers_correct() {
    let dataset = city();
    let workload = WorkloadSpec::new(2).queries(20).seed(5).generate(&dataset);
    let ctx = Arc::new(ServiceContext::from_dataset(dataset));
    // A 4-entry cache under 20 distinct queries, twice: heavy eviction.
    let service = QueryService::new(
        Arc::clone(&ctx),
        ServiceConfig { workers: 4, cache_capacity: 4, ..ServiceConfig::default() },
    );
    let first = service.run_batch(workload.queries.iter().cloned());
    let second = service.run_batch(workload.queries.iter().cloned());
    for (a, b) in first.iter().zip(&second) {
        assert_eq!(a.as_ref().unwrap().routes, b.as_ref().unwrap().routes);
    }
    let m = service.metrics();
    assert!(m.cache.evictions > 0, "capacity 4 must evict under 20 queries");
    assert_eq!(m.cache.len, 4);
}
