//! The §6 extensions in action: complex category requirements
//! (disjunction + negation), unordered skyline trip planning, and a
//! comparison of the two.
//!
//! ```text
//! cargo run --release --example flexible_requirements
//! ```

use skysr::category::Requirement;
use skysr::core::bssr::Bssr;
use skysr::core::query::PositionSpec;
use skysr::core::variants::unordered::UnorderedQuery;
use skysr::core::SkySrQuery;
use skysr::prelude::*;

fn main() {
    let dataset = DatasetSpec::preset(Preset::TokyoSmall).scale(0.2).seed(3).generate();
    let ctx = dataset.context();
    let cat = |n: &str| dataset.forest.by_name(n).expect("category exists");

    // Find a starting vertex and confirm the taxonomy has what we need.
    let start = skysr::graph::VertexId(17);

    // --- Complex requirement: "an American or Mexican restaurant, but no
    // pizza", then "a museum" (§6 "Complex category requirement"). ---
    let food = Requirement::any_of([cat("American Restaurant"), cat("Mexican Restaurant")])
        .but_not(cat("Pizza Place"));
    let q = SkySrQuery::with_positions(
        start,
        [PositionSpec::Requirement(food), PositionSpec::Category(cat("Museum"))],
    );
    let result = Bssr::new(&ctx).run(&q).expect("valid query");
    println!("complex requirement — {} skyline route(s):", result.routes.len());
    for r in &result.routes {
        let stops: Vec<&str> =
            r.pois.iter().map(|&p| dataset.forest.name(dataset.pois.categories_of(p)[0])).collect();
        println!("  {:>9.1} m  s={:.3}  {}", r.length.get(), r.semantic, stops.join(" -> "));
        // The negation holds: no pizza place is ever used.
        assert!(stops.iter().all(|s| *s != "Pizza Place"));
    }

    // --- Unordered trip planning (§6 "Skyline trip planning query"):
    // same categories, any visiting order. ---
    let cats = [cat("Coffee Shop"), cat("Bookstore")];
    let ordered = Bssr::new(&ctx).run(&SkySrQuery::new(start, cats)).expect("valid query");
    let unordered = UnorderedQuery::new(start, cats).run(&ctx).expect("valid query");
    let best = |routes: &[skysr::core::SkylineRoute]| {
        routes
            .iter()
            .filter(|r| r.semantic == 0.0)
            .map(|r| r.length.get())
            .fold(f64::INFINITY, f64::min)
    };
    println!(
        "\nordered   <Coffee Shop, Bookstore>: best perfect route {:>9.1} m",
        best(&ordered.routes)
    );
    println!(
        "unordered {{Coffee Shop, Bookstore}}: best perfect route {:>9.1} m",
        best(&unordered.routes)
    );
    // Dropping the order constraint can only help.
    assert!(best(&unordered.routes) <= best(&ordered.routes) + 1e-6);
}
