//! Bench-smoke harness: measures the reuse layer against PR 1's
//! exact-match-cache baseline on reuse-friendly workloads and serializes
//! the evidence as a JSON metrics artifact (`BENCH_pr.json` in CI).
//!
//! Three workloads, each replayed twice over the *same* shared context and
//! query pool:
//!
//! * **duplicate** ([`StreamPattern::DuplicateBursts`]) — baseline
//!   (coalescing off) vs. reuse (coalescing on);
//! * **prefix** ([`StreamPattern::PrefixChains`]) — baseline (warm starts
//!   off) vs. reuse (warm starts on);
//! * **dynamic** — the duplicate-burst stream with weight-update bursts
//!   published mid-stream ([`BenchSpec::update_rate`]); measures what the
//!   reuse layer is worth when epochs keep invalidating cached skylines,
//!   and certifies (via the epoch-aware verifier and the stale-serve
//!   counter) that invalidation never leaks a stale answer while updates
//!   race the replay;
//! * **hierarchy** — a single wavefront pass over category-subtree
//!   chains (suffix → ancestor variant → full query; see
//!   [`StreamPattern::Hierarchy`]) in which **every request is a distinct
//!   query**, so the baseline cold-searches all of them while the
//!   treatment warm-starts two of every three from the previously cached
//!   chain entry. Both modes run the full PR 2-4 reuse stack; only the
//!   new *ancestor* and *suffix* seed sources are toggled, so the ratio
//!   (`speedup_hierarchy`, CI-gated via `--require-hierarchy-speedup`)
//!   isolates exactly what this PR added;
//! * **repair** — epoch churn again, but both modes run the full reuse
//!   layer and only *incremental skyline repair* is toggled: baseline =
//!   PR 3's invalidate-and-recompute, treatment = repair cached skylines
//!   against the exact epoch delta and promote them in place. Unlike the
//!   burst cells, this one replays deterministic *update waves*
//!   ([`ReplaySpec::update_every`]): a weight-delta burst publishes after
//!   every chunk of requests drains, so every cached key crosses a fixed
//!   number of epochs in both modes — a closed-loop burst would coalesce
//!   away before the first update lands, and an open-loop stream lets a
//!   *slow* baseline dodge its own invalidation penalty by clumping
//!   requests inside one epoch. The throughput ratio (`speedup_repair`)
//!   is the CI-gated evidence that repair beats recompute under epoch
//!   churn.
//! * **telemetry** — the duplicate-burst stream with the full reuse layer
//!   in both modes; only span retention is toggled (off vs. a retained
//!   [`TraceSpan`](crate::telemetry::TraceSpan) for *every* request). The
//!   best-of-five-trials throughput ratio (`telemetry_overhead_ratio`,
//!   CI-gated via `--require-telemetry-ratio`) is the evidence that full
//!   tracing costs at most a few percent.
//! * **net** — the duplicate-burst stream again, full reuse layer in both
//!   modes; only the *transport* is toggled: in-process submission vs. a
//!   loopback `skysr-d` socket (frame encode/decode, TCP, the client
//!   demux). Both modes' throughput is measured client-side as
//!   requests/wall over the replay window (the daemon serves all socket
//!   trials, so its own lifetime snapshot would understate per-run
//!   throughput). The best-of-three ratio (`net_ratio`, CI-gated via
//!   `--require-net-ratio`) bounds the transport tax.
//! * **overload** — the update-churned Zipf stream, full reuse + repair in
//!   both modes; only the *load* is toggled: an uncontended open loop at
//!   half measured capacity vs. an open loop at **2× measured capacity**
//!   with a per-request deadline (the uncontended run's p99 latency)
//!   and admission control. The deadline-aware scheduler must keep cheap
//!   rungs fast while the expensive ones shed or degrade: the cell
//!   reports the hit-rung p99 ratio (overloaded over uncontended,
//!   floored at the deadline budget; CI-gated via
//!   `--require-overload-ratio`), the shed count (must be nonzero — at
//!   2× capacity the backlog wait grows past any fixed budget) and the
//!   approximate-served count. The overloaded run keeps `verify`
//!   on, which also proves every degraded answer is a *valid* partial
//!   (mutually non-dominated, never better than the exact skyline).
//! * **shards** — the scale-out cell: [`BenchSpec::shards`] regions
//!   served behind one [`Router`](crate::Router) (each shard its own
//!   graph, worker pool and result cache) vs. a *monolith* serving the
//!   union — one service on a `shards ×` larger graph whose working set
//!   is the union of every region's, on the **same fixed per-process
//!   budget** (identical cache capacity and total worker count). Both
//!   sides replay the same total number of requests; uniform popularity
//!   keeps the working set the whole pool, so each shard's region pool
//!   *fits* its cache while the monolith's union pool thrashes its LRU —
//!   and every monolith miss re-searches a `shards ×` larger graph. The
//!   aggregate-throughput ratio (`speedup_shards`, CI-gated via
//!   `--require-shard-speedup`) is the evidence that shard-per-region
//!   placement beats scale-up under a fixed per-process budget. The
//!   sharded side runs with `verify` on, per shard — the router path
//!   must stay oracle-exact.
//!
//! Reuse runs execute with `verify` enabled, so the artifact also
//! certifies that every concurrent answer was score-equivalent to a
//! sequential cold run *at its pinned weight epoch*. JSON is hand-rolled
//! (the workspace builds offline, without serde); the format is flat and
//! stable for CI trend tooling.
//!
//! # Served-outcome taxonomy
//!
//! Every completed request is answered by exactly one rung, so the
//! per-run counters tile: `completed = executed + cache_hits +
//! coalesced_hits`. `executed` counts requests that ran the engine (cold
//! and warm-seeded searches plus repairs), `cache_hits` exact-match
//! answers from the result cache at the pinned epoch, and
//! `coalesced_hits` followers answered by joining another request's
//! in-flight computation. A duplicate burst's followers probe the cache
//! *before* the leader has filled it — each probe counts one cache
//! *miss* — and then join the leader's flight, so a coalescing-heavy
//! cell legitimately reports near-zero `cache_hits` alongside a large
//! `coalesced_hits`: the reuse shows up in `coalesced_hits` (and in
//! `reuse_rate`, which is `(cache_hits + coalesced_hits) / completed`),
//! not in `cache_hit_rate`.

use std::sync::Arc;
use std::time::Duration;

use skysr_core::bssr::BssrConfig;
use skysr_data::dataset::{Dataset, DatasetSpec, Preset};

use crate::context::ServiceContext;
use crate::net::{RemoteService, Server, ServerConfig};
use crate::replay::{
    build_pool, replay, replay_on, replay_remote, replay_sharded, ReplayReport, ReplaySpec,
    ShardedReplayReport, StreamPattern, TelemetryMode,
};
use crate::service::{QueryService, Service, ServiceConfig};
use crate::telemetry::{Rung, TelemetryConfig};

/// Parameters of one bench-smoke run.
#[derive(Clone, Debug)]
pub struct BenchSpec {
    /// Requests per replay.
    pub total: usize,
    /// Distinct generated queries per workload.
    pub distinct: usize,
    /// Category-sequence length.
    pub seq_len: usize,
    /// Worker threads (0 = one per CPU).
    pub workers: usize,
    /// Burst size of the duplicate workload.
    pub burst: usize,
    /// Weight-update bursts per second in the *dynamic* and *repair*
    /// workload cells.
    pub update_rate: f64,
    /// Edge reweightings per update burst in the dynamic/repair cells.
    pub update_burst: usize,
    /// Update-wave cadence of the repair cell: one weight-delta burst
    /// publishes after every this-many requests drain, so both modes pay
    /// a deterministic number of epoch crossings per cached key.
    pub repair_update_every: usize,
    /// RNG seed.
    pub seed: u64,
    /// Engine configuration.
    pub engine: BssrConfig,
    /// Regions in the shard-scaling cell (its monolith baseline serves a
    /// graph scaled by this factor).
    pub shards: usize,
    /// Per-region dataset scale of the shard-scaling cell (the cell
    /// generates its own datasets — `shards` small cities plus one
    /// `shards ×` larger one — independent of the bench's main dataset).
    pub shard_scale: f64,
}

impl Default for BenchSpec {
    fn default() -> BenchSpec {
        BenchSpec {
            total: 144,
            distinct: 8,
            seq_len: 3,
            workers: 8,
            burst: 24,
            update_rate: 200.0,
            update_burst: 16,
            repair_update_every: 16,
            seed: 7,
            engine: BssrConfig::default(),
            shards: 4,
            shard_scale: 0.05,
        }
    }
}

/// One measured replay inside the bench.
#[derive(Clone, Debug)]
pub struct BenchRun {
    /// Workload name (`duplicate` / `prefix` / `dynamic`).
    pub workload: &'static str,
    /// Mode name (`exact-match` baseline / `reuse`).
    pub mode: &'static str,
    /// The underlying replay report.
    pub report: ReplayReport,
}

/// The full bench outcome.
#[derive(Clone, Debug)]
pub struct BenchReport {
    /// All eighteen runs.
    pub runs: Vec<BenchRun>,
    /// Reuse-over-baseline throughput ratio on the duplicate workload.
    pub speedup_duplicate: f64,
    /// Reuse-over-baseline throughput ratio on the prefix workload.
    pub speedup_prefix: f64,
    /// Reuse-over-baseline throughput ratio on the dynamic (update-heavy)
    /// workload.
    pub speedup_dynamic: f64,
    /// Ancestor+suffix-seeding-over-cold throughput ratio on the
    /// hierarchy workload (full reuse stack in both modes; only the two
    /// new seed sources toggled).
    pub speedup_hierarchy: f64,
    /// Repair-over-invalidate-and-recompute throughput ratio on the
    /// update-heavy duplicate workload (both modes run the full reuse
    /// layer; only incremental repair is toggled).
    pub speedup_repair: f64,
    /// Traced-over-untraced throughput ratio on the telemetry workload
    /// (full span retention vs. none; ≥ 0.95 means tracing costs at most
    /// 5% of throughput).
    pub telemetry_overhead_ratio: f64,
    /// Socket-over-in-process throughput ratio on the net workload (the
    /// loopback `skysr-d` transport tax; measured client-side as
    /// requests/wall in both modes).
    pub net_ratio: f64,
    /// Hit-rung p99 latency on the 2×-capacity overload run over its
    /// uncontended value *floored at the request deadline* (the latency
    /// budget — an idle service answers hits in microseconds, so the raw
    /// quotient would measure the idle floor, not the scheduler). The
    /// deadline-aware scheduler's headline number: surviving hits must
    /// stay within a small multiple of the budget while the service
    /// sheds and degrades around them (CI-gated via
    /// `--require-overload-ratio`).
    pub overload_hit_p99_ratio: f64,
    /// Requests shed in the overloaded run (admission rejections plus
    /// deadlines expired in queue). Zero means the cell failed to
    /// overload the service.
    pub overload_shed: u64,
    /// Responses served as valid approximate partials in the overloaded
    /// run (deadline expired mid-engine).
    pub overload_approximate: u64,
    /// Aggregate-throughput ratio of the shard-scaling cell:
    /// [`BenchReport::shard_count`] shards behind one router, each with
    /// its own context, worker pool and result cache, over a monolith
    /// serving the union of the regions (a `shards ×` larger graph, the
    /// union working set) on the *same* fixed per-process budget (same
    /// cache capacity, same total worker count). Scale-out wins on both
    /// axes the cell compounds: each shard searches a `shards ×` smaller
    /// graph, and each shard's region working set *fits* its cache while
    /// the monolith's union working set thrashes its LRU. CI-gated via
    /// `--require-shard-speedup`.
    pub speedup_shards: f64,
    /// Regions driven in the shard-scaling cell.
    pub shard_count: usize,
}

impl BenchReport {
    /// The smallest of the reuse-layer speedups. Informational: the hard
    /// CI gates (`--require-speedup`, `--require-repair-speedup`)
    /// threshold the duplicate and repair workloads; the dynamic cell's
    /// ratio depends on how many epochs happened to publish inside the
    /// short window. The shard-scaling ratio is deliberately *not*
    /// folded in — it measures data placement, not the reuse layer, and
    /// has its own gate (`--require-shard-speedup`).
    pub fn min_speedup(&self) -> f64 {
        self.speedup_duplicate
            .min(self.speedup_prefix)
            .min(self.speedup_dynamic)
            .min(self.speedup_hierarchy)
            .min(self.speedup_repair)
    }

    /// Total verification mismatches across the verified (reuse) runs.
    pub fn verify_mismatches(&self) -> usize {
        self.runs.iter().filter_map(|r| r.report.verify_mismatches).sum()
    }

    /// Total stale serves across all runs — the staleness gate, must be 0.
    pub fn stale_served(&self) -> u64 {
        self.runs.iter().map(|r| r.report.stale_served()).sum()
    }

    /// Serializes the report as a flat JSON document (one nested `rungs`
    /// object per run: count and p50/p99 for every rung that served).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n  \"runs\": [\n");
        for (i, run) in self.runs.iter().enumerate() {
            let m = &run.report.metrics;
            let c = &m.cache;
            let reuse_rate = if m.completed > 0 {
                (c.hits + m.coalesced) as f64 / m.completed as f64
            } else {
                0.0
            };
            let rungs: Vec<String> = m
                .rungs
                .iter()
                .filter(|rs| !rs.hist.is_empty())
                .map(|rs| {
                    format!(
                        "\"{}\": {{\"count\": {}, \"p50_ms\": {:.6}, \"p99_ms\": {:.6}}}",
                        rs.rung.label(),
                        rs.hist.count(),
                        rs.hist.quantile(0.50).as_secs_f64() * 1e3,
                        rs.hist.quantile(0.99).as_secs_f64() * 1e3,
                    )
                })
                .collect();
            out.push_str(&format!(
                "    {{\"workload\": \"{}\", \"mode\": \"{}\", \"requests\": {}, \
                 \"workers\": {}, \"wall_s\": {:.6}, \"throughput_qps\": {:.3}, \
                 \"latency_p50_ms\": {:.6}, \"latency_p99_ms\": {:.6}, \
                 \"queue_wait_p50_ms\": {:.6}, \"queue_wait_p99_ms\": {:.6}, \
                 \"executed\": {}, \"coalesced_hits\": {}, \"prefix_seeded\": {}, \
                 \"seeded_ancestor\": {}, \"seeded_suffix\": {}, \
                 \"cache_hits\": {}, \"cache_misses\": {}, \"cache_hit_rate\": {:.6}, \
                 \"reuse_rate\": {:.6}, \
                 \"cache_insertions\": {}, \"cache_evictions\": {}, \
                 \"cache_invalidations\": {}, \"epochs_published\": {}, \
                 \"repairs\": {}, \"repair_fallbacks\": {}, \"routes_rescored\": {}, \
                 \"stale_served\": {}, \"verify_mismatches\": {}, \
                 \"rejected\": {}, \"shed_deadline\": {}, \"approximate_served\": {}, \
                 \"rungs\": {{{}}}}}{}\n",
                run.workload,
                run.mode,
                m.completed,
                run.report.workers,
                run.report.wall.as_secs_f64(),
                m.throughput_qps,
                m.latency_p50.as_secs_f64() * 1e3,
                m.latency_p99.as_secs_f64() * 1e3,
                m.queue_wait_hist.quantile(0.50).as_secs_f64() * 1e3,
                m.queue_wait_hist.quantile(0.99).as_secs_f64() * 1e3,
                m.executed,
                m.coalesced,
                m.seeded_prefix,
                m.seeded_ancestor,
                m.seeded_suffix,
                c.hits,
                c.misses,
                c.hit_rate(),
                reuse_rate,
                c.insertions,
                c.evictions,
                c.invalidations,
                run.report.epochs_published,
                m.repairs,
                m.repair_fallbacks,
                m.routes_rescored,
                m.stale_served,
                run.report
                    .verify_mismatches
                    .map(|v| v.to_string())
                    .unwrap_or_else(|| "null".to_owned()),
                m.rejected,
                m.shed_deadline,
                m.approximate_served,
                rungs.join(", "),
                if i + 1 == self.runs.len() { "" } else { "," }
            ));
        }
        out.push_str(&format!(
            "  ],\n  \"speedup_duplicate\": {:.4},\n  \"speedup_prefix\": {:.4},\n  \
             \"speedup_dynamic\": {:.4},\n  \"speedup_hierarchy\": {:.4},\n  \
             \"speedup_repair\": {:.4},\n  \"telemetry_overhead_ratio\": {:.4},\n  \
             \"net_ratio\": {:.4},\n  \
             \"overload_hit_p99_ratio\": {:.4},\n  \"overload_shed\": {},\n  \
             \"overload_approximate\": {},\n  \
             \"speedup_shards\": {:.4},\n  \"shard_count\": {},\n  \
             \"min_speedup\": {:.4},\n  \"verify_mismatches\": {},\n  \
             \"stale_served\": {}\n}}\n",
            self.speedup_duplicate,
            self.speedup_prefix,
            self.speedup_dynamic,
            self.speedup_hierarchy,
            self.speedup_repair,
            self.telemetry_overhead_ratio,
            self.net_ratio,
            self.overload_hit_p99_ratio,
            self.overload_shed,
            self.overload_approximate,
            self.speedup_shards,
            self.shard_count,
            self.min_speedup(),
            self.verify_mismatches(),
            self.stale_served()
        ));
        out
    }
}

impl std::fmt::Display for BenchReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        for run in &self.runs {
            let m = &run.report.metrics;
            writeln!(
                f,
                "{:<9} {:<11} {:>9.1} q/s  p50 {:>7.3} ms  p99 {:>7.3} ms  {} searched, \
                 {} coalesced, {} warm, {:.0}% hit, {} invalidated",
                run.workload,
                run.mode,
                m.throughput_qps,
                m.latency_p50.as_secs_f64() * 1e3,
                m.latency_p99.as_secs_f64() * 1e3,
                m.executed,
                m.coalesced,
                m.seeded_prefix + m.seeded_ancestor + m.seeded_suffix,
                m.cache.hit_rate() * 100.0,
                m.cache.invalidations
            )?;
        }
        write!(
            f,
            "speedup     duplicate {:.2}x, prefix {:.2}x, dynamic {:.2}x (reuse vs. exact-match \
             baseline), hierarchy {:.2}x (ancestor+suffix seeding vs. cold), repair {:.2}x \
             (repair vs. invalidate-and-recompute); {} stale serves",
            self.speedup_duplicate,
            self.speedup_prefix,
            self.speedup_dynamic,
            self.speedup_hierarchy,
            self.speedup_repair,
            self.stale_served()
        )?;
        write!(
            f,
            "\ntelemetry   {:.3} traced-vs-off throughput ratio (a span retained per request)",
            self.telemetry_overhead_ratio
        )?;
        write!(
            f,
            "\nnet         {:.3} socket-vs-in-process throughput ratio (loopback skysr-d)",
            self.net_ratio
        )?;
        write!(
            f,
            "\noverload    {:.2}x hit-rung p99 at 2x capacity ({} shed, {} approximate)",
            self.overload_hit_p99_ratio, self.overload_shed, self.overload_approximate
        )?;
        write!(
            f,
            "\nshards      {:.2}x aggregate throughput on {} shards vs. one monolith (same \
             per-process cache budget and worker count)",
            self.speedup_shards, self.shard_count
        )
    }
}

/// Builds a [`ReplaySpec`] for one (workload, mode) cell. `update_rate`
/// is nonzero only for the dynamic workload.
fn cell_spec(
    bench: &BenchSpec,
    pattern: StreamPattern,
    reuse: bool,
    update_rate: f64,
) -> ReplaySpec {
    ReplaySpec {
        total: bench.total,
        distinct: bench.distinct,
        seq_len: bench.seq_len,
        pattern,
        burst: bench.burst,
        seed: bench.seed,
        workers: bench.workers,
        coalesce: reuse,
        prefix_reuse: reuse,
        ancestor_reuse: reuse,
        suffix_reuse: reuse,
        engine: bench.engine,
        update_rate,
        update_burst: bench.update_burst,
        // The baseline is PR 1's exact-match LRU: caching stays ON in both
        // modes; only the new reuse mechanisms are toggled.
        // Reuse runs carry the correctness gate.
        verify: reuse,
        ..ReplaySpec::default()
    }
}

/// The hierarchy cell: full PR 2-4 reuse stack in both modes (cache,
/// coalescing, prefix — which never fires on this pool, chains share no
/// prefix), only the new ancestor/suffix seed sources toggled. A single
/// wavefront pass (`total == pool len`) keeps every request distinct, so
/// the toggle decides cold search vs. warm-seeded search for two of every
/// three requests.
fn hierarchy_cell_spec(bench: &BenchSpec, reuse: bool) -> ReplaySpec {
    let distinct = bench.distinct * 4;
    ReplaySpec {
        pattern: StreamPattern::Hierarchy,
        distinct,
        total: distinct * crate::replay::HIERARCHY_CHAIN,
        ancestor_reuse: reuse,
        suffix_reuse: reuse,
        // The treatment carries the correctness gate (ancestor/suffix
        // seeds must be oracle-exact).
        verify: reuse,
        ..cell_spec(bench, StreamPattern::Hierarchy, true, 0.0)
    }
}

/// The repair cell: full reuse layer in both modes, only incremental
/// repair toggled, deterministic update waves in both (see the module
/// docs for why neither a closed-loop burst nor an open-loop stream can
/// measure this fairly).
fn repair_cell_spec(bench: &BenchSpec, repair: bool) -> ReplaySpec {
    ReplaySpec {
        repair,
        update_every: bench.repair_update_every.max(1),
        // Three times the burst-cell volume: the signal is *accumulated*
        // epoch crossings per cached key, so a longer stream drives the
        // measured ratio far above the CI gate's 1.5x and out of
        // scheduling noise.
        total: bench.total * 3,
        // The treatment carries the correctness gate (repair must be
        // oracle-exact at every pinned epoch). The baseline is PR 3's
        // already-verified invalidate path — re-proving it here would
        // only slow the bench down.
        verify: repair,
        ..cell_spec(bench, StreamPattern::Zipf, true, 0.0)
    }
}

/// The overload cell: the full reuse + repair stack over a churned Zipf
/// stream with a *wide* pool, so the bulk of the load lands on the search
/// rungs instead of the cache (a hit-saturated stream warms past its
/// cold-calibrated capacity and 2× of that never actually overloads the
/// service), while the Zipf head still repeats often enough that the
/// hit rung has samples under overload — the ratio needs both sides.
/// Only the load is toggled: `overload: 0.5` paces an open loop at half
/// measured capacity (uncontended — latencies are genuine service times,
/// not flood-queue waits), `overload: 2.0` paces at twice capacity with
/// a deadline and admission control.
fn overload_cell_spec(bench: &BenchSpec, overload: f64, deadline: Option<Duration>) -> ReplaySpec {
    let distinct = bench.distinct * 16;
    ReplaySpec {
        distinct,
        total: distinct * 2,
        zipf_exponent: 1.0,
        repair: true,
        deadline,
        overload,
        admission: deadline.is_some(),
        // Both modes carry the correctness gate; in the overloaded mode it
        // additionally proves every degraded partial is consistent with
        // the exact skyline.
        verify: true,
        ..cell_spec(bench, StreamPattern::Zipf, true, bench.update_rate / 4.0)
    }
}

/// Runs the eighteen-cell bench over `dataset`.
///
/// Both modes of a workload replay the *identical* request stream over one
/// shared context, so the throughput ratio isolates the reuse layer. (In
/// the dynamic cells the update *schedule* is identically seeded, though
/// epoch boundaries still land timing-dependently within each window.)
/// Two kinds of untimed warmup run first, because the measured cells are
/// short (tens of milliseconds of useful work) and fixed startup taxes
/// would otherwise dominate whichever cell runs first:
///
/// * one cold sequential search per pool query, faulting the touched graph
///   regions into memory;
/// * two throwaway replays that spawn and drop full worker pools — each
///   pool's per-worker Dijkstra workspaces are tens of megabytes on large
///   cities, and the first service lifecycles in a process pay their page
///   faults (the allocator reuses the arena afterwards, so later services
///   start warm).
pub fn bench(dataset: Dataset, spec: &BenchSpec) -> BenchReport {
    let dup_pool =
        build_pool(&dataset, &cell_spec(spec, StreamPattern::DuplicateBursts, false, 0.0));
    let pre_pool = build_pool(&dataset, &cell_spec(spec, StreamPattern::PrefixChains, false, 0.0));
    let hier_pool = build_pool(&dataset, &hierarchy_cell_spec(spec, false));
    let over_pool = build_pool(&dataset, &overload_cell_spec(spec, 0.0, None));
    let ctx = Arc::new(ServiceContext::from_dataset(dataset));

    {
        let qctx = ctx.query_context();
        let mut engine = skysr_core::bssr::Bssr::with_config(&qctx, spec.engine);
        for q in dup_pool.iter().chain(&pre_pool).chain(&hier_pool).chain(&over_pool) {
            let _ = engine.run(q);
        }
    }
    for _ in 0..2 {
        let warm = ReplaySpec {
            total: (spec.burst * 2).max(8),
            verify: false,
            ..cell_spec(spec, StreamPattern::DuplicateBursts, true, 0.0)
        };
        replay_on(Arc::clone(&ctx), &dup_pool, &warm);
    }

    let mut runs = Vec::with_capacity(18);
    let mut speedups = Vec::with_capacity(3);
    for (workload, pattern, pool, update_rate) in [
        ("duplicate", StreamPattern::DuplicateBursts, &dup_pool, 0.0),
        ("prefix", StreamPattern::PrefixChains, &pre_pool, 0.0),
        ("dynamic", StreamPattern::DuplicateBursts, &dup_pool, spec.update_rate),
    ] {
        let base = replay_on(Arc::clone(&ctx), pool, &cell_spec(spec, pattern, false, update_rate));
        let reuse = replay_on(Arc::clone(&ctx), pool, &cell_spec(spec, pattern, true, update_rate));
        let ratio = if base.metrics.throughput_qps > 0.0 {
            reuse.metrics.throughput_qps / base.metrics.throughput_qps
        } else {
            0.0
        };
        speedups.push(ratio);
        runs.push(BenchRun { workload, mode: "exact-match", report: base });
        runs.push(BenchRun { workload, mode: "reuse", report: reuse });
    }

    // Hierarchy cell: ancestor+suffix seeding vs. cold searches over the
    // same single-pass subtree-walk stream.
    let base = replay_on(Arc::clone(&ctx), &hier_pool, &hierarchy_cell_spec(spec, false));
    let treat = replay_on(Arc::clone(&ctx), &hier_pool, &hierarchy_cell_spec(spec, true));
    let speedup_hierarchy = if base.metrics.throughput_qps > 0.0 {
        treat.metrics.throughput_qps / base.metrics.throughput_qps
    } else {
        0.0
    };
    runs.push(BenchRun { workload: "hierarchy", mode: "cold", report: base });
    runs.push(BenchRun { workload: "hierarchy", mode: "seeded", report: treat });

    // Repair cell: invalidate-and-recompute vs. repair-in-place, under
    // the same update schedule.
    let base = replay_on(Arc::clone(&ctx), &dup_pool, &repair_cell_spec(spec, false));
    let treat = replay_on(Arc::clone(&ctx), &dup_pool, &repair_cell_spec(spec, true));
    let speedup_repair = if base.metrics.throughput_qps > 0.0 {
        treat.metrics.throughput_qps / base.metrics.throughput_qps
    } else {
        0.0
    };
    runs.push(BenchRun { workload: "repair", mode: "invalidate", report: base });
    runs.push(BenchRun { workload: "repair", mode: "repair", report: treat });

    // Telemetry-overhead cell: the identical duplicate-burst stream with
    // the full reuse layer in both modes; only span retention is toggled
    // (off vs. a retained span per request). Eight times the burst-cell
    // volume plus best-of-five interleaved trials per mode pull the
    // ratio out of scheduling noise — each trial is milliseconds of wall
    // clock and the OS can only ever steal time, so the fastest trial is
    // the cleanest estimate of each mode's cost. Correctness is not
    // re-verified here (the duplicate cell above already did), but full
    // tracing's own completeness audit still runs in the traced mode.
    let telemetry_cell = |telemetry| ReplaySpec {
        total: spec.total * 8,
        verify: false,
        telemetry,
        ..cell_spec(spec, StreamPattern::DuplicateBursts, true, 0.0)
    };
    let mut base: Option<ReplayReport> = None;
    let mut treat: Option<ReplayReport> = None;
    for _ in 0..5 {
        let b = replay_on(Arc::clone(&ctx), &dup_pool, &telemetry_cell(TelemetryMode::Off));
        if base.as_ref().is_none_or(|old| b.metrics.throughput_qps > old.metrics.throughput_qps) {
            base = Some(b);
        }
        let t = replay_on(Arc::clone(&ctx), &dup_pool, &telemetry_cell(TelemetryMode::Full));
        if treat.as_ref().is_none_or(|old| t.metrics.throughput_qps > old.metrics.throughput_qps) {
            treat = Some(t);
        }
    }
    let (base, treat) = (base.expect("five trials ran"), treat.expect("five trials ran"));
    let telemetry_overhead_ratio = if base.metrics.throughput_qps > 0.0 {
        treat.metrics.throughput_qps / base.metrics.throughput_qps
    } else {
        0.0
    };
    runs.push(BenchRun { workload: "telemetry", mode: "off", report: base });
    runs.push(BenchRun { workload: "telemetry", mode: "traced", report: treat });

    // Transport-overhead cell: the identical duplicate-burst stream with
    // the full reuse layer in both modes; only the transport is toggled.
    // Each socket trial spawns a fresh loopback daemon over the *same*
    // shared context the in-process trials use (so cache state stays
    // comparable and the per-trial metrics snapshot covers exactly one
    // replay), drives it through `RemoteService`, and shuts it down. The
    // context doubles as the remote replay's shadow: this cell publishes
    // no weight updates, so fingerprints match by construction. Ratios
    // use driver-side requests/wall — see the module docs.
    let net_spec = ReplaySpec {
        total: spec.total * 4,
        verify: false,
        telemetry: TelemetryMode::Off,
        ..cell_spec(spec, StreamPattern::DuplicateBursts, true, 0.0)
    };
    let daemon_config = ServiceConfig {
        workers: net_spec.workers,
        queue_capacity: net_spec.queue_capacity,
        cache_capacity: net_spec.cache_capacity,
        coalesce: net_spec.coalesce,
        prefix_reuse: net_spec.prefix_reuse,
        ancestor_reuse: net_spec.ancestor_reuse,
        suffix_reuse: net_spec.suffix_reuse,
        repair: net_spec.repair,
        engine: net_spec.engine,
        telemetry: TelemetryConfig::disabled(),
        ..ServiceConfig::default()
    };
    let wall_qps = |r: &ReplayReport| r.total as f64 / r.wall.as_secs_f64().max(1e-9);
    let mut base: Option<ReplayReport> = None;
    let mut treat: Option<ReplayReport> = None;
    for _ in 0..3 {
        let b = replay_on(Arc::clone(&ctx), &dup_pool, &net_spec);
        if base.as_ref().is_none_or(|old| wall_qps(&b) > wall_qps(old)) {
            base = Some(b);
        }
        let daemon = Arc::new(Service::new(Arc::clone(&ctx), daemon_config.clone()));
        let mut server = Server::spawn("127.0.0.1:0", daemon, ServerConfig::default())
            .expect("bind a loopback listener");
        let remote =
            RemoteService::connect(server.local_addr()).expect("connect to the loopback daemon");
        let t = replay_remote(&remote, Arc::clone(&ctx), &dup_pool, &net_spec)
            .expect("the loopback daemon serves the same dataset by construction");
        let _ = remote.shutdown();
        server.join();
        if treat.as_ref().is_none_or(|old| wall_qps(&t) > wall_qps(old)) {
            treat = Some(t);
        }
    }
    let (base, treat) = (base.expect("three trials ran"), treat.expect("three trials ran"));
    let net_ratio = if wall_qps(&base) > 0.0 { wall_qps(&treat) / wall_qps(&base) } else { 0.0 };
    runs.push(BenchRun { workload: "net", mode: "in-process", report: base });
    runs.push(BenchRun { workload: "net", mode: "socket", report: treat });

    // Overload cell: the identical churned stream, only the load toggled
    // (see `overload_cell_spec`). The overloaded mode's deadline is the
    // uncontended run's *p99* latency: comfortably above the engine's
    // work granularity (a deadline below one indivisible engine step
    // would truncate every search at its first check and starve the hit
    // rung of the samples the ratio needs), yet fixed — at 2× capacity
    // the backlog wait grows linearly past any fixed budget, so the
    // arrivals after the first deadline's worth of stream provably shed.
    // The scheduler must shed or degrade that tail while hits overtake
    // it — the hit-rung p99 ratio is the headline number.
    let base = replay_on(Arc::clone(&ctx), &over_pool, &overload_cell_spec(spec, 0.5, None));
    let deadline = base.metrics.latency_p99.max(Duration::from_millis(1));
    let treat =
        replay_on(Arc::clone(&ctx), &over_pool, &overload_cell_spec(spec, 2.0, Some(deadline)));
    let hit_p99 = |r: &ReplayReport| {
        r.metrics
            .rungs
            .iter()
            .find(|rs| rs.rung == Rung::ExactHit)
            .map_or(Duration::ZERO, |rs| rs.hist.quantile(0.99))
    };
    // The denominator is the uncontended hit p99 floored at the deadline:
    // an idle 0.5× run answers hits in tens of microseconds, so dividing
    // by it raw would measure the idle floor, not the scheduler. Surviving
    // hits under overload are budget-bounded by construction (expired ones
    // shed at dequeue), so a working scheduler scores ~1× here and one
    // that lets hits queue behind the backlog blows through the gate.
    let (hit_base, hit_treat) = (hit_p99(&base).max(deadline), hit_p99(&treat));
    let overload_hit_p99_ratio = if hit_treat > Duration::ZERO {
        hit_treat.as_secs_f64() / hit_base.as_secs_f64()
    } else {
        0.0
    };
    let overload_shed = treat.shed();
    let overload_approximate = treat.approximate_served();
    runs.push(BenchRun { workload: "overload", mode: "uncontended", report: base });
    runs.push(BenchRun { workload: "overload", mode: "2x-overload", report: treat });

    // Shard-scaling cell. Self-contained datasets (the main dataset was
    // consumed above, and the comparison needs a graph family at two
    // scales): `shards` small cities vs. one `shards ×` larger one, all
    // deterministically seeded. Uniform popularity (zipf 0) makes the
    // working set the whole pool; the cache capacity sits between one
    // region's pool and the union pool, so shards fit and the monolith
    // thrashes. Several passes let fitting caches actually pay off.
    // Workers split evenly so both sides field the same total.
    let shard_count = spec.shards.max(1);
    let shard_distinct = spec.distinct * 4;
    let shard_passes = 10;
    let lane_spec = ReplaySpec {
        total: shard_distinct * shard_passes,
        distinct: shard_distinct,
        zipf_exponent: 0.0,
        cache_capacity: shard_distinct * 5 / 4,
        workers: (spec.workers / shard_count).max(1),
        verify: true,
        ..cell_spec(spec, StreamPattern::Zipf, true, 0.0)
    };
    let mono_spec = ReplaySpec {
        total: shard_count * shard_distinct * shard_passes,
        distinct: shard_count * shard_distinct,
        workers: (spec.workers / shard_count).max(1) * shard_count,
        verify: false,
        ..lane_spec.clone()
    };
    let city = |scale: f64, seed: u64| {
        DatasetSpec::preset(Preset::CalSmall).scale(scale).seed(seed).generate()
    };
    let mut base: Option<ReplayReport> = None;
    let mut treat: Option<ShardedReplayReport> = None;
    for _ in 0..2 {
        let b = replay(city(spec.shard_scale * shard_count as f64, spec.seed + 99), &mono_spec);
        if base.as_ref().is_none_or(|old| b.metrics.throughput_qps > old.metrics.throughput_qps) {
            base = Some(b);
        }
        let regions: Vec<(String, Dataset)> = (0..shard_count)
            .map(|i| (format!("region-{i}"), city(spec.shard_scale, spec.seed + 100 + i as u64)))
            .collect();
        let t = replay_sharded(regions, &lane_spec);
        assert_eq!(t.misrouted, 0, "a replay stamps every request with its own region");
        if treat.as_ref().is_none_or(|old| {
            t.merged_metrics().throughput_qps > old.merged_metrics().throughput_qps
        }) {
            treat = Some(t);
        }
    }
    let (base, treat) = (base.expect("two trials ran"), treat.expect("two trials ran"));
    let merged = treat.merged_metrics();
    let speedup_shards = if base.metrics.throughput_qps > 0.0 {
        merged.throughput_qps / base.metrics.throughput_qps
    } else {
        0.0
    };
    // Fold the fleet into one run row so the artifact's shared gates
    // (verify_mismatches, stale_served) cover the sharded side too.
    let sharded = ReplayReport {
        total: treat.total(),
        distinct: treat.shards.iter().map(|s| s.report.distinct).sum(),
        pattern: StreamPattern::Zipf,
        workers: treat.shards.iter().map(|s| s.report.workers).sum(),
        qps: 0.0,
        wall: treat.wall,
        epochs_published: treat.shards.iter().map(|s| s.report.epochs_published).sum(),
        epoch_gc: merged.epochs,
        metrics: merged,
        verify_mismatches: Some(
            treat.shards.iter().filter_map(|s| s.report.verify_mismatches).sum(),
        ),
        verify_skipped: Some(treat.shards.iter().filter_map(|s| s.report.verify_skipped).sum()),
        spans: Vec::new(),
        trace_violations: None,
        overload: 0.0,
        met_deadline: None,
    };
    runs.push(BenchRun { workload: "shards", mode: "monolith", report: base });
    runs.push(BenchRun { workload: "shards", mode: "sharded", report: sharded });

    BenchReport {
        runs,
        speedup_duplicate: speedups[0],
        speedup_prefix: speedups[1],
        speedup_dynamic: speedups[2],
        speedup_hierarchy,
        speedup_repair,
        telemetry_overhead_ratio,
        net_ratio,
        overload_hit_p99_ratio,
        overload_shed,
        overload_approximate,
        speedup_shards,
        shard_count,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use skysr_data::dataset::{DatasetSpec, Preset};

    #[test]
    fn bench_measures_reuse_and_serializes_json() {
        let dataset = DatasetSpec::preset(Preset::CalSmall).scale(0.05).seed(9).generate();
        let spec = BenchSpec {
            total: 160,
            distinct: 8,
            seq_len: 2,
            workers: 4,
            burst: 8,
            update_rate: 400.0,
            update_burst: 8,
            ..BenchSpec::default()
        };
        let report = bench(dataset, &spec);
        assert_eq!(report.runs.len(), 18);
        // The correctness gate ran on the reuse runs and passed — including
        // the dynamic cell, whose oracle is epoch-aware.
        assert_eq!(report.verify_mismatches(), 0);
        // The staleness gate: nothing was ever served cross-epoch.
        assert_eq!(report.stale_served(), 0);
        for run in &report.runs {
            let expect: u64 = match run.workload {
                "repair" => 480,
                "hierarchy" => 8 * 4 * 3, // distinct×4 chains, 3 entries each, one pass
                "telemetry" => 1_280,     // 8x the burst-cell volume
                "net" => 640,             // 4x the burst-cell volume
                "overload" => 8 * 16 * 2, // distinct×16 pool, two draws per entry
                "shards" => 8 * 4 * 4 * 10, // shards × per-shard distinct × passes
                _ => 160,
            };
            let m = &run.report.metrics;
            if run.workload == "overload" {
                // The overloaded mode sheds instead of completing part of
                // the stream; the accounting must still tile exactly.
                assert_eq!(
                    m.completed + m.rejected + m.shed_deadline,
                    expect,
                    "{}/{}: every request completes or sheds",
                    run.workload,
                    run.mode
                );
                if run.mode == "uncontended" {
                    assert_eq!(m.completed, expect, "no deadline, nothing to shed");
                    assert_eq!(m.rejected + m.shed_deadline + m.approximate_served, 0);
                } else {
                    assert!(
                        run.report.met_deadline.is_some(),
                        "the overloaded mode reports its met-deadline split"
                    );
                }
            } else {
                assert_eq!(m.completed, expect, "{}/{}", run.workload, run.mode);
            }
            // Coalesced / warm-start *counts* in reuse mode are
            // scheduling-dependent on a fast fixture; the deterministic
            // guarantees live in tests/coalescing.rs. Here only the mode
            // wiring and the correctness gate are asserted.
            if run.mode == "exact-match" {
                assert_eq!(m.coalesced, 0);
                assert_eq!(m.seeded_prefix + m.seeded_ancestor + m.seeded_suffix, 0);
            }
            if run.mode == "cold" {
                assert_eq!(
                    m.seeded_ancestor + m.seeded_suffix,
                    0,
                    "the hierarchy baseline runs without the new seed sources"
                );
            }
            if !matches!(run.workload, "dynamic" | "repair" | "overload") {
                assert_eq!(run.report.epochs_published, 0, "static cells stay static");
            }
            if run.mode == "invalidate" {
                assert_eq!(m.repairs, 0, "repair off in the baseline mode");
                assert_eq!(m.repair_fallbacks, 0);
            }
            if run.workload == "hierarchy" && run.mode == "seeded" {
                assert!(
                    m.seeded_ancestor > 0 && m.seeded_suffix > 0,
                    "the hierarchy treatment must exercise both new seed sources: {m:?}"
                );
            }
            if run.workload == "telemetry" {
                match run.mode {
                    "off" => assert!(run.report.spans.is_empty(), "untraced mode kept spans"),
                    "traced" => {
                        assert_eq!(run.report.spans.len(), 1_280, "full tracing keeps every span");
                        assert_eq!(
                            run.report.trace_violations,
                            Some(0),
                            "the trace-completeness invariant must hold in the traced cell"
                        );
                    }
                    other => panic!("unexpected telemetry mode {other}"),
                }
            }
        }
        assert!(
            report.telemetry_overhead_ratio > 0.0,
            "the telemetry cell must measure a ratio: {}",
            report.telemetry_overhead_ratio
        );
        assert!(report.net_ratio > 0.0, "the net cell must measure a ratio: {}", report.net_ratio);
        assert!(
            report.overload_hit_p99_ratio > 0.0,
            "the overload cell must measure a hit-rung ratio: {}",
            report.overload_hit_p99_ratio
        );
        assert_eq!(report.shard_count, 4);
        assert!(
            report.speedup_shards > 0.0,
            "the shard cell must measure a ratio: {}",
            report.speedup_shards
        );
        let json = report.to_json();
        // Well-formed enough for jq/python: balanced braces, the headline
        // keys present, no trailing comma before the array close.
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert!(json.contains("\"speedup_duplicate\""));
        assert!(json.contains("\"speedup_dynamic\""));
        assert!(json.contains("\"speedup_hierarchy\""));
        assert!(json.contains("\"seeded_ancestor\""));
        assert!(json.contains("\"seeded_suffix\""));
        assert!(json.contains("\"speedup_repair\""));
        assert!(json.contains("\"repairs\""));
        assert!(json.contains("\"workload\": \"repair\""));
        assert!(json.contains("\"min_speedup\""));
        assert!(json.contains("\"stale_served\": 0"));
        assert!(json.contains("\"workload\": \"prefix\""));
        assert!(json.contains("\"workload\": \"dynamic\""));
        assert!(json.contains("\"workload\": \"hierarchy\""));
        assert!(json.contains("\"workload\": \"telemetry\""));
        assert!(json.contains("\"telemetry_overhead_ratio\""));
        assert!(json.contains("\"workload\": \"net\""));
        assert!(json.contains("\"mode\": \"socket\""));
        assert!(json.contains("\"net_ratio\""));
        assert!(json.contains("\"workload\": \"overload\""));
        assert!(json.contains("\"mode\": \"2x-overload\""));
        assert!(json.contains("\"overload_hit_p99_ratio\""));
        assert!(json.contains("\"overload_shed\""));
        assert!(json.contains("\"overload_approximate\""));
        assert!(json.contains("\"workload\": \"shards\""));
        assert!(json.contains("\"mode\": \"sharded\""));
        assert!(json.contains("\"speedup_shards\""));
        assert!(json.contains("\"shard_count\": 4"));
        assert!(json.contains("\"rejected\""));
        assert!(json.contains("\"shed_deadline\""));
        assert!(json.contains("\"approximate_served\""));
        assert!(json.contains("\"coalesced_hits\""));
        assert!(json.contains("\"reuse_rate\""));
        assert!(json.contains("\"queue_wait_p50_ms\""));
        assert!(json.contains("\"rungs\": {"));
        assert!(json.contains("\"p99_ms\""));
        assert!(!json.contains(",\n  ]"));
        let text = report.to_string();
        assert!(text.contains("speedup"), "{text}");
        assert!(text.contains("dynamic"), "{text}");
        assert!(text.contains("hierarchy"), "{text}");
        assert!(text.contains("repair"), "{text}");
        assert!(text.contains("telemetry"), "{text}");
        assert!(text.contains("socket-vs-in-process"), "{text}");
        assert!(text.contains("hit-rung p99 at 2x capacity"), "{text}");
        assert!(text.contains("aggregate throughput on 4 shards"), "{text}");
    }
}
