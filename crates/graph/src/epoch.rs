//! Dynamic edge weights: epoch-versioned copy-on-write weight overlays.
//!
//! Live traffic changes edge weights underneath long-running services.
//! Rebuilding (or even copying) a city-scale CSR per update is far too
//! expensive, and mutating weights in place would let a search observe a
//! half-applied update. Instead, a [`WeightEpoch`] manager applies batched
//! [`WeightDelta`]s as sparse, immutable [`WeightOverlay`]s over the shared
//! CSR storage — the same diff-over-base idea the incremental-versioning
//! literature uses for snapshot storage — and each published batch gets a
//! monotonically increasing [`EpochId`]:
//!
//! * **Readers pin.** [`WeightEpoch::pin`] returns a [`RoadNetwork`] view
//!   (two `Arc` clones) frozen at the current epoch; a search that holds it
//!   sees one consistent set of weights no matter how many updates publish
//!   concurrently.
//! * **Writers copy-on-write.** [`WeightEpoch::publish`] merges the new
//!   deltas with the previous cumulative overlay into a fresh overlay —
//!   O(cumulative changed arcs + batch), which stays far below O(|E|) as
//!   long as traffic touches a fraction of the network — and retains every
//!   published overlay so past epochs stay pinnable
//!   ([`WeightEpoch::pin_at`]) for verification and result-cache audits.
//!   Retention means memory grows with epochs × changed arcs; compacting
//!   or garbage-collecting old overlays once no reader can pin them is a
//!   recorded follow-on (see ROADMAP), not yet implemented.
//!
//! Overlay entries are keyed by *arc slot* (see [`RoadNetwork::arc`]), so
//! lookups during neighbour iteration are a cursor walk over a sorted
//! sub-slice rather than a hash probe per arc.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use crate::csr::RoadNetwork;
use crate::VertexId;

/// Identifier of a published weight epoch. Epoch ids are monotonically
/// increasing per [`WeightEpoch`] manager, starting at [`EpochId::BASE`]
/// (the weights the network was built with).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct EpochId(pub u64);

impl EpochId {
    /// The epoch of the base weights (no update applied).
    pub const BASE: EpochId = EpochId(0);

    /// Raw value accessor.
    #[inline]
    pub fn get(self) -> u64 {
        self.0
    }
}

impl std::fmt::Debug for EpochId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "e{}", self.0)
    }
}

impl std::fmt::Display for EpochId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// One edge reweighting: the edge `from — to` takes the absolute weight
/// `weight` from the publishing epoch on. On undirected networks both
/// stored arc directions are updated; parallel edges are all updated.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct WeightDelta {
    /// Tail vertex.
    pub from: VertexId,
    /// Head vertex.
    pub to: VertexId,
    /// New absolute weight (non-negative, non-NaN).
    pub weight: f64,
}

impl WeightDelta {
    /// Creates a delta, validating the weight.
    ///
    /// # Panics
    /// If `weight` is negative or NaN.
    pub fn new(from: VertexId, to: VertexId, weight: f64) -> WeightDelta {
        assert!(weight >= 0.0, "edge weight must be non-negative, got {weight}");
        WeightDelta { from, to, weight }
    }
}

/// A sparse, immutable arc-reweighting layer: the cumulative set of arcs
/// whose weight differs from the base CSR weights, as of one epoch.
#[derive(Debug)]
pub struct WeightOverlay {
    epoch: EpochId,
    /// Affected arc slots, sorted ascending, unique.
    arcs: Box<[u32]>,
    /// `weights[i]` is the weight of arc `arcs[i]`.
    weights: Box<[f64]>,
}

impl WeightOverlay {
    fn empty(epoch: EpochId) -> WeightOverlay {
        WeightOverlay { epoch, arcs: Box::new([]), weights: Box::new([]) }
    }

    /// The epoch this overlay was published as.
    #[inline]
    pub fn epoch(&self) -> EpochId {
        self.epoch
    }

    /// Number of reweighted arcs.
    pub fn len(&self) -> usize {
        self.arcs.len()
    }

    /// Whether no arc is reweighted.
    pub fn is_empty(&self) -> bool {
        self.arcs.is_empty()
    }

    /// The overlay entries covering arc slots `lo..hi`, as parallel
    /// (slots, weights) sub-slices.
    #[inline]
    pub(crate) fn range(&self, lo: u32, hi: u32) -> (&[u32], &[f64]) {
        let a = self.arcs.partition_point(|&s| s < lo);
        let b = a + self.arcs[a..].partition_point(|&s| s < hi);
        (&self.arcs[a..b], &self.weights[a..b])
    }

    /// The overlay weight of arc `slot`, if reweighted.
    #[inline]
    pub(crate) fn weight_of(&self, slot: u32) -> Option<f64> {
        self.arcs.binary_search(&slot).ok().map(|i| self.weights[i])
    }

    /// All (arc slot, weight) entries.
    pub(crate) fn entries(&self) -> impl Iterator<Item = (u32, f64)> + '_ {
        self.arcs.iter().copied().zip(self.weights.iter().copied())
    }

    /// Approximate heap footprint in bytes.
    pub fn heap_bytes(&self) -> usize {
        self.arcs.len() * std::mem::size_of::<u32>()
            + self.weights.len() * std::mem::size_of::<f64>()
    }
}

/// Epoch-versioned manager of dynamic edge weights over one road network.
///
/// The network passed to [`WeightEpoch::new`] (with whatever weights its
/// view carries) becomes epoch 0. Each [`publish`](WeightEpoch::publish)
/// folds a batch of deltas into a new cumulative overlay and makes it the
/// current epoch; readers that [`pin`](WeightEpoch::pin)ned an earlier
/// epoch keep their snapshot untouched. Epoch ids are meaningful only
/// within one manager.
#[derive(Debug)]
pub struct WeightEpoch {
    base: RoadNetwork,
    /// The most recently published epoch id, readable without the lock —
    /// serving workers poll this once per request to decide whether to
    /// re-pin, and must not serialize against an in-progress publish
    /// merge.
    current: AtomicU64,
    /// Every published overlay; `overlays[e]` is epoch `e`'s cumulative
    /// layer (epoch 0 is the base view's own overlay, usually empty).
    /// Retained so past epochs stay pinnable; each holds only the arcs
    /// changed since the base, so memory is O(epochs × changed arcs), not
    /// O(epochs × |E|).
    overlays: Mutex<Vec<Arc<WeightOverlay>>>,
}

impl WeightEpoch {
    /// Takes `base` (as currently weighted) as epoch 0.
    pub fn new(base: RoadNetwork) -> WeightEpoch {
        let zero = match base.overlay() {
            // A re-managed pinned view keeps its weights but restarts the
            // epoch counter: flatten its overlay into this manager's epoch 0.
            Some(o) => Arc::new(WeightOverlay {
                epoch: EpochId::BASE,
                arcs: o.arcs.clone(),
                weights: o.weights.clone(),
            }),
            None => Arc::new(WeightOverlay::empty(EpochId::BASE)),
        };
        WeightEpoch { base, current: AtomicU64::new(0), overlays: Mutex::new(vec![zero]) }
    }

    /// The most recently published epoch. Lock-free: safe to poll per
    /// request even while a publish is merging overlays.
    pub fn current_epoch(&self) -> EpochId {
        EpochId(self.current.load(Ordering::Acquire))
    }

    /// A read view pinned to the current epoch. O(1): two `Arc` clones.
    pub fn pin(&self) -> RoadNetwork {
        let overlay = Arc::clone(
            self.overlays
                .lock()
                .expect("epoch manager poisoned")
                .last()
                .expect("epoch 0 always exists"),
        );
        self.view(overlay)
    }

    /// A read view pinned to `epoch`, if it was published by this manager.
    pub fn pin_at(&self, epoch: EpochId) -> Option<RoadNetwork> {
        let overlays = self.overlays.lock().expect("epoch manager poisoned");
        overlays.get(epoch.0 as usize).map(|o| self.view(Arc::clone(o)))
    }

    fn view(&self, overlay: Arc<WeightOverlay>) -> RoadNetwork {
        if overlay.is_empty() && overlay.epoch() == EpochId::BASE {
            // The epoch-0 pin of an unmodified base needs no overlay at all.
            self.base.clone()
        } else {
            self.base.with_overlay(overlay)
        }
    }

    /// The base (epoch-0) view.
    pub fn base(&self) -> &RoadNetwork {
        &self.base
    }

    /// Applies one batch of weight deltas as the next epoch and returns its
    /// id. Copy-on-write: the previous overlay is merged with the resolved
    /// deltas into a fresh overlay (last write wins within the batch);
    /// published epochs are never mutated.
    ///
    /// An empty batch still publishes a (content-identical) new epoch —
    /// callers control epoch granularity.
    ///
    /// # Panics
    /// If a delta names an edge that does not exist in the network, or
    /// carries a negative/NaN weight.
    pub fn publish(&self, deltas: &[WeightDelta]) -> EpochId {
        // Resolve edges to arc slots outside the lock; both directions of
        // an undirected edge change together so a pinned view stays
        // symmetric.
        let mut patch: Vec<(u32, f64)> = Vec::with_capacity(deltas.len() * 2);
        for d in deltas {
            assert!(
                !d.weight.is_nan() && d.weight >= 0.0,
                "edge weight must be non-negative, got {}",
                d.weight
            );
            let mut slots = self.base.arcs_between(d.from, d.to);
            if !self.base.is_directed() && d.from != d.to {
                slots.extend(self.base.arcs_between(d.to, d.from));
            }
            assert!(
                !slots.is_empty(),
                "weight delta names a nonexistent edge {:?} -> {:?}",
                d.from,
                d.to
            );
            patch.extend(slots.into_iter().map(|s| (s, d.weight)));
        }
        // Within one batch the last delta for an edge wins.
        patch.sort_by_key(|&(s, _)| s);
        patch.dedup_by(|later, earlier| {
            // `dedup_by` keeps the *first* of a run; runs are in input order
            // after the stable sort, so copy the later value forward.
            if later.0 == earlier.0 {
                earlier.1 = later.1;
                true
            } else {
                false
            }
        });

        let mut overlays = self.overlays.lock().expect("epoch manager poisoned");
        let prev = overlays.last().expect("epoch 0 always exists");
        let epoch = EpochId(overlays.len() as u64);
        // Sorted two-pointer merge of the previous cumulative overlay with
        // the patch (patch wins on collision).
        let mut arcs = Vec::with_capacity(prev.arcs.len() + patch.len());
        let mut weights = Vec::with_capacity(prev.arcs.len() + patch.len());
        let (mut i, mut j) = (0usize, 0usize);
        while i < prev.arcs.len() || j < patch.len() {
            let take_patch = match (prev.arcs.get(i), patch.get(j)) {
                (Some(&a), Some(&(b, _))) => {
                    if a == b {
                        i += 1; // superseded by the patch
                        true
                    } else {
                        b < a
                    }
                }
                (None, Some(_)) => true,
                (Some(_), None) => false,
                (None, None) => unreachable!(),
            };
            if take_patch {
                let (s, w) = patch[j];
                arcs.push(s);
                weights.push(w);
                j += 1;
            } else {
                arcs.push(prev.arcs[i]);
                weights.push(prev.weights[i]);
                i += 1;
            }
        }
        overlays.push(Arc::new(WeightOverlay {
            epoch,
            arcs: arcs.into_boxed_slice(),
            weights: weights.into_boxed_slice(),
        }));
        // Advertise the epoch only after its overlay is resident (still
        // inside the lock), so a reader that observes the new id can
        // always pin it.
        self.current.store(epoch.0, Ordering::Release);
        epoch
    }

    /// Number of reweighted arcs in the current cumulative overlay.
    pub fn overlay_len(&self) -> usize {
        self.overlays
            .lock()
            .expect("epoch manager poisoned")
            .last()
            .expect("epoch 0 always exists")
            .len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;
    use crate::weight::Cost;

    /// 0 —1— 1 —2— 2, plus 0 —5— 2.
    fn triangle() -> RoadNetwork {
        let mut b = GraphBuilder::new();
        let v: Vec<_> = (0..3).map(|_| b.add_vertex()).collect();
        b.add_edge(v[0], v[1], 1.0);
        b.add_edge(v[1], v[2], 2.0);
        b.add_edge(v[0], v[2], 5.0);
        b.build()
    }

    fn weight_between(g: &RoadNetwork, a: u32, b: u32) -> f64 {
        g.neighbors(VertexId(a)).find(|&(t, _)| t == VertexId(b)).map(|(_, w)| w.get()).unwrap()
    }

    #[test]
    fn epochs_are_monotonic_and_pins_are_stable() {
        let epochs = WeightEpoch::new(triangle());
        assert_eq!(epochs.current_epoch(), EpochId::BASE);
        let e0 = epochs.pin();
        let e1 = epochs.publish(&[WeightDelta::new(VertexId(0), VertexId(1), 9.0)]);
        assert_eq!(e1, EpochId(1));
        let e2 = epochs.publish(&[WeightDelta::new(VertexId(1), VertexId(2), 4.0)]);
        assert_eq!(e2, EpochId(2));
        assert_eq!(epochs.current_epoch(), EpochId(2));
        // The epoch-0 pin still sees base weights.
        assert_eq!(weight_between(&e0, 0, 1), 1.0);
        assert_eq!(e0.epoch(), EpochId::BASE);
        // Cumulative: epoch 2 sees both updates.
        let p2 = epochs.pin();
        assert_eq!(p2.epoch(), EpochId(2));
        assert_eq!(weight_between(&p2, 0, 1), 9.0);
        assert_eq!(weight_between(&p2, 1, 2), 4.0);
        assert_eq!(weight_between(&p2, 0, 2), 5.0);
        // Historical pin: epoch 1 has only the first update.
        let p1 = epochs.pin_at(EpochId(1)).unwrap();
        assert_eq!(weight_between(&p1, 0, 1), 9.0);
        assert_eq!(weight_between(&p1, 1, 2), 2.0);
        assert!(epochs.pin_at(EpochId(99)).is_none());
    }

    #[test]
    fn undirected_updates_apply_to_both_arcs() {
        let epochs = WeightEpoch::new(triangle());
        epochs.publish(&[WeightDelta::new(VertexId(2), VertexId(0), 7.5)]);
        let p = epochs.pin();
        assert_eq!(weight_between(&p, 0, 2), 7.5);
        assert_eq!(weight_between(&p, 2, 0), 7.5);
    }

    #[test]
    fn directed_updates_touch_one_direction() {
        let mut b = GraphBuilder::directed();
        let v0 = b.add_vertex();
        let v1 = b.add_vertex();
        b.add_edge(v0, v1, 1.0);
        b.add_edge(v1, v0, 1.0);
        let epochs = WeightEpoch::new(b.build());
        epochs.publish(&[WeightDelta::new(v0, v1, 3.0)]);
        let p = epochs.pin();
        assert_eq!(weight_between(&p, 0, 1), 3.0);
        assert_eq!(weight_between(&p, 1, 0), 1.0);
    }

    #[test]
    fn last_delta_wins_within_a_batch() {
        let epochs = WeightEpoch::new(triangle());
        epochs.publish(&[
            WeightDelta::new(VertexId(0), VertexId(1), 2.0),
            WeightDelta::new(VertexId(1), VertexId(0), 3.0),
        ]);
        let p = epochs.pin();
        assert_eq!(weight_between(&p, 0, 1), 3.0);
        assert_eq!(weight_between(&p, 1, 0), 3.0);
    }

    #[test]
    fn empty_batch_still_advances_the_epoch() {
        let epochs = WeightEpoch::new(triangle());
        let e = epochs.publish(&[]);
        assert_eq!(e, EpochId(1));
        assert_eq!(epochs.pin().epoch(), EpochId(1));
        assert_eq!(weight_between(&epochs.pin(), 0, 1), 1.0);
    }

    #[test]
    fn managing_a_pinned_view_preserves_weights_and_restarts_epochs() {
        let first = WeightEpoch::new(triangle());
        first.publish(&[WeightDelta::new(VertexId(0), VertexId(1), 6.0)]);
        let handoff = first.pin();
        let second = WeightEpoch::new(handoff);
        assert_eq!(second.current_epoch(), EpochId::BASE);
        let p = second.pin();
        assert_eq!(p.epoch(), EpochId::BASE);
        assert_eq!(weight_between(&p, 0, 1), 6.0, "inherited weights survive the handoff");
        second.publish(&[WeightDelta::new(VertexId(1), VertexId(2), 8.0)]);
        let q = second.pin();
        assert_eq!(weight_between(&q, 0, 1), 6.0);
        assert_eq!(weight_between(&q, 1, 2), 8.0);
    }

    #[test]
    #[should_panic(expected = "nonexistent edge")]
    fn unknown_edge_rejected() {
        let epochs = WeightEpoch::new(triangle());
        epochs.publish(&[WeightDelta::new(VertexId(0), VertexId(0), 1.0)]);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_weight_rejected() {
        WeightDelta::new(VertexId(0), VertexId(1), -1.0);
    }

    #[test]
    fn overlay_len_tracks_cumulative_changes() {
        let epochs = WeightEpoch::new(triangle());
        assert_eq!(epochs.overlay_len(), 0);
        epochs.publish(&[WeightDelta::new(VertexId(0), VertexId(1), 2.0)]);
        assert_eq!(epochs.overlay_len(), 2, "both arc directions");
        // Re-updating the same edge does not grow the overlay.
        epochs.publish(&[WeightDelta::new(VertexId(0), VertexId(1), 3.0)]);
        assert_eq!(epochs.overlay_len(), 2);
        epochs.publish(&[WeightDelta::new(VertexId(1), VertexId(2), 3.0)]);
        assert_eq!(epochs.overlay_len(), 4);
    }

    #[test]
    fn concurrent_readers_on_pinned_epochs_are_unaffected_by_publishes() {
        use crate::dijkstra::{shortest_distance, DijkstraWorkspace};
        let epochs = std::sync::Arc::new(WeightEpoch::new(triangle()));
        let pinned = epochs.pin(); // epoch 0: d(0, 2) = 3 via 0-1-2
        let readers: Vec<_> = (0..4)
            .map(|_| {
                let g = pinned.clone();
                std::thread::spawn(move || {
                    let mut ws = DijkstraWorkspace::new(g.num_vertices());
                    (0..200)
                        .map(|_| shortest_distance(&g, &mut ws, VertexId(0), VertexId(2)).unwrap())
                        .all(|d| d == Cost::new(3.0))
                })
            })
            .collect();
        let writer = {
            let epochs = std::sync::Arc::clone(&epochs);
            std::thread::spawn(move || {
                for i in 0..200u32 {
                    epochs.publish(&[WeightDelta::new(
                        VertexId(0),
                        VertexId(1),
                        1.0 + f64::from(i),
                    )]);
                }
            })
        };
        for r in readers {
            assert!(r.join().unwrap(), "a pinned reader must never observe an update");
        }
        writer.join().unwrap();
        assert_eq!(epochs.current_epoch(), EpochId(200));
        // After the writer, a fresh pin sees the last update.
        let mut ws = DijkstraWorkspace::new(3);
        let d = shortest_distance(&epochs.pin(), &mut ws, VertexId(0), VertexId(2)).unwrap();
        assert_eq!(d, Cost::new(5.0), "0-1 now costs 200, so the direct 0-2 edge wins");
    }
}
