//! The owned, shareable counterpart of `skysr_core::QueryContext`, with
//! epoch-managed dynamic edge weights.

use std::collections::VecDeque;
use std::sync::{Arc, Mutex, OnceLock};

use skysr_category::{CategoryForest, Similarity, WuPalmer};
use skysr_core::{PoiTable, QueryContext};
use skysr_data::dataset::Dataset;
use skysr_graph::{
    DeltaIndex, DeltaSet, EpochGcStats, EpochId, Landmarks, RoadNetwork, VertexId, WeightDelta,
    WeightEpoch,
};

/// Landmarks built for the repair lower bounds: enough for useful
/// triangle-inequality bounds, few enough that the one-time build (one
/// full Dijkstra each) stays negligible next to serving.
const REPAIR_LANDMARKS: usize = 8;

/// Recent [`DeltaIndex`]es kept resident. Traffic repairs against a
/// handful of live epoch pairs at a time (workers re-pin per job, so the
/// "to" side is almost always the current epoch); a small ring makes the
/// index effectively built once per pair and shared across every stale
/// key of that pair.
const DELTA_INDEX_RING: usize = 16;

/// One memoized per-epoch-pair index: ((from, to), the shared index).
type IndexedPair = ((EpochId, EpochId), Arc<DeltaIndex>);

/// Owned bundle of graph + category forest + PoI table + similarity
/// measure.
///
/// The borrowed [`QueryContext`] ties a query to the stack frame owning
/// the data; a `ServiceContext` instead *owns* the data, so one
/// `Arc<ServiceContext>` can be moved into any number of worker threads.
///
/// The road network is held behind a [`WeightEpoch`] manager: weight
/// updates are published with [`Self::publish_weights`] while workers keep
/// serving. A worker never reads the live graph directly — it takes a
/// [`PinnedContext`] via [`Self::pin`], a consistent snapshot frozen at one
/// [`EpochId`], and runs the existing engines on it unchanged. Forest, PoI
/// table and similarity remain immutable for the context's lifetime.
pub struct ServiceContext {
    graph: WeightEpoch,
    forest: CategoryForest,
    pois: PoiTable,
    similarity: Arc<dyn Similarity>,
    /// Landmark (ALT) oracle over the epoch-0 weights, built lazily on the
    /// first repair attempt. `None` inside means the graph does not
    /// support landmarks (directed) — repair then skips its cheap
    /// lower-bound tiers but stays correct.
    landmarks: OnceLock<Option<Landmarks>>,
    /// Per-epoch-pair touched-ball indexes, most recent last.
    delta_indexes: Mutex<VecDeque<IndexedPair>>,
}

// Shared across worker threads; the graph's epoch manager is internally
// synchronized and everything else is either plain owned data or an
// `Arc<dyn Similarity>` whose trait requires `Send + Sync`. Keep that a
// compile-time fact:
const _: fn() = || {
    fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<ServiceContext>();
};

impl ServiceContext {
    /// Context with the default Wu–Palmer similarity.
    pub fn new(graph: RoadNetwork, forest: CategoryForest, pois: PoiTable) -> ServiceContext {
        ServiceContext::with_similarity(graph, forest, pois, Arc::new(WuPalmer))
    }

    /// Context with a custom similarity measure.
    pub fn with_similarity(
        graph: RoadNetwork,
        forest: CategoryForest,
        pois: PoiTable,
        similarity: Arc<dyn Similarity>,
    ) -> ServiceContext {
        ServiceContext {
            graph: WeightEpoch::new(graph),
            forest,
            pois,
            similarity,
            landmarks: OnceLock::new(),
            delta_indexes: Mutex::new(VecDeque::new()),
        }
    }

    /// Takes ownership of a generated (or loaded) dataset's graph, forest
    /// and PoI table.
    pub fn from_dataset(dataset: Dataset) -> ServiceContext {
        ServiceContext::new(dataset.graph, dataset.forest, dataset.pois)
    }

    /// A borrowed [`QueryContext`] over the *base* (epoch-0) graph view,
    /// usable with every algorithm in `skysr-core`.
    ///
    /// This deliberately does not follow weight updates — it borrows from
    /// `self` and therefore cannot pin a snapshot. Code that must see
    /// current (or historical) traffic goes through [`Self::pin`] /
    /// [`Self::pin_at`].
    pub fn query_context(&self) -> QueryContext<'_> {
        QueryContext::with_similarity(
            self.graph.base(),
            &self.forest,
            &self.pois,
            &*self.similarity,
        )
    }

    /// A consistent snapshot of the context at the current weight epoch.
    /// O(1): the graph view is two `Arc` clones.
    pub fn pin(&self) -> PinnedContext<'_> {
        self.pinned_view(self.graph.pin())
    }

    /// A snapshot pinned to `epoch`, if that epoch was published on this
    /// context. Historical pins power verification: a replayed answer is
    /// audited against a fresh search *at the epoch it was served under*.
    pub fn pin_at(&self, epoch: EpochId) -> Option<PinnedContext<'_>> {
        self.graph.pin_at(epoch).map(|g| self.pinned_view(g))
    }

    fn pinned_view(&self, graph: RoadNetwork) -> PinnedContext<'_> {
        PinnedContext {
            graph,
            forest: &self.forest,
            pois: &self.pois,
            similarity: &*self.similarity,
        }
    }

    /// Publishes one batch of edge-weight deltas as the next epoch and
    /// returns its id. Already-pinned snapshots are unaffected; subsequent
    /// [`Self::pin`] calls observe the new weights.
    ///
    /// # Panics
    /// If a delta names a nonexistent edge or a negative/NaN weight.
    pub fn publish_weights(&self, deltas: &[WeightDelta]) -> EpochId {
        self.graph.publish(deltas)
    }

    /// The most recently published weight epoch.
    pub fn current_epoch(&self) -> EpochId {
        self.graph.current_epoch()
    }

    /// Bounds the weight-epoch history to the newest `retention` epochs
    /// (`0` = unlimited, the default). Older overlays are compacted once
    /// no reader leases them; epochs that fell out of the ring can no
    /// longer be pinned with [`Self::pin_at`] — in particular, replay
    /// verification (which re-answers requests at historical epochs)
    /// requires unlimited retention.
    pub fn set_epoch_retention(&self, retention: usize) {
        self.graph.set_retention(retention);
    }

    /// Forces a history compaction sweep plus a base-CSR rebase of the
    /// newest cumulative overlay (see
    /// [`WeightEpoch::compact`]). Returns the number of overlays dropped.
    pub fn compact_epochs(&self) -> usize {
        self.graph.compact()
    }

    /// Epoch history / GC accounting (retained overlays, compactions,
    /// rebases) for metrics and the soak gates.
    pub fn epoch_gc_stats(&self) -> EpochGcStats {
        self.graph.gc_stats()
    }

    /// The exact arc-weight diff between two retained epochs, or `None`
    /// when either epoch was compacted away (repair then falls back to a
    /// fresh search). See [`WeightEpoch::delta_between`].
    pub fn delta_between(&self, from: EpochId, to: EpochId) -> Option<DeltaSet> {
        self.graph.delta_between(from, to)
    }

    /// The shared per-epoch-pair touched-ball index for `(from, to)`, or
    /// `None` when the pair's delta is no longer derivable (an epoch was
    /// compacted away, or the pair straddles a base-CSR rebase).
    ///
    /// Built **once** per pair — from [`Self::delta_between`] plus the
    /// landmark oracle — and memoized in a small ring, so repairing N
    /// stale cache keys against one weight update costs one index build
    /// plus N O(landmarks) ball probes instead of N per-key, per-tail
    /// landmark scans. This is the "shared per-epoch delta
    /// classification" the repair tiers consume.
    pub fn delta_index(&self, from: EpochId, to: EpochId) -> Option<Arc<DeltaIndex>> {
        if from > to {
            return None;
        }
        {
            let ring = self.delta_indexes.lock().expect("delta-index ring poisoned");
            if let Some((_, index)) = ring.iter().rev().find(|(pair, _)| *pair == (from, to)) {
                return Some(Arc::clone(index));
            }
        }
        // Build outside the lock: delta diffing and the landmark interval
        // scan must not serialize the serving workers.
        let delta = self.graph.delta_between(from, to)?;
        let index = Arc::new(DeltaIndex::build(delta, self.landmarks()));
        let mut ring = self.delta_indexes.lock().expect("delta-index ring poisoned");
        if !ring.iter().any(|(pair, _)| *pair == (from, to)) {
            if ring.len() == DELTA_INDEX_RING {
                ring.pop_front();
            }
            ring.push_back(((from, to), Arc::clone(&index)));
        }
        Some(index)
    }

    /// The landmark lower-bound oracle repair's cheap tiers use, built
    /// over the epoch-0 weights on first use (`None` for graphs without
    /// landmark support, i.e. directed ones). Callers that enable repair
    /// should invoke this once during warmup so the build cost does not
    /// land on the first repaired request.
    pub fn landmarks(&self) -> Option<&Landmarks> {
        self.landmarks
            .get_or_init(|| {
                let base = self.graph.base();
                (!base.is_directed() && base.num_vertices() > 0)
                    .then(|| Landmarks::build(base, REPAIR_LANDMARKS, VertexId(0)))
            })
            .as_ref()
    }

    /// The base (epoch-0) road network view.
    pub fn graph(&self) -> &RoadNetwork {
        self.graph.base()
    }

    /// The category forest.
    pub fn forest(&self) -> &CategoryForest {
        &self.forest
    }

    /// The PoI table.
    pub fn pois(&self) -> &PoiTable {
        &self.pois
    }
}

impl std::fmt::Debug for ServiceContext {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServiceContext")
            .field("vertices", &self.graph.base().num_vertices())
            .field("edges", &self.graph.base().num_edges())
            .field("pois", &self.pois.num_pois())
            .field("categories", &self.forest.num_categories())
            .field("epoch", &self.graph.current_epoch())
            .finish()
    }
}

/// A consistent snapshot of a [`ServiceContext`] frozen at one weight
/// epoch.
///
/// The graph view is owned (cheap — shared storage plus the epoch's
/// overlay); forest, PoI table and similarity are borrowed from the
/// context. A search run over [`Self::query_context`] observes exactly the
/// weights of [`Self::epoch`], no matter what updates publish concurrently.
pub struct PinnedContext<'a> {
    graph: RoadNetwork,
    forest: &'a CategoryForest,
    pois: &'a PoiTable,
    similarity: &'a dyn Similarity,
}

impl PinnedContext<'_> {
    /// The weight epoch this snapshot is frozen at.
    pub fn epoch(&self) -> EpochId {
        self.graph.epoch()
    }

    /// The pinned graph view.
    pub fn graph(&self) -> &RoadNetwork {
        &self.graph
    }

    /// A borrowed [`QueryContext`] over this snapshot, usable with every
    /// algorithm in `skysr-core`.
    pub fn query_context(&self) -> QueryContext<'_> {
        QueryContext::with_similarity(&self.graph, self.forest, self.pois, self.similarity)
    }
}

impl std::fmt::Debug for PinnedContext<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PinnedContext")
            .field("epoch", &self.epoch())
            .field("vertices", &self.graph.num_vertices())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use skysr_core::bssr::Bssr;
    use skysr_core::paper_example::PaperExample;

    fn paper_service_context() -> ServiceContext {
        let ex = PaperExample::new();
        ServiceContext::new(ex.graph.clone(), ex.forest.clone(), ex.pois.clone())
    }

    #[test]
    fn query_context_matches_borrowed_results() {
        let ex = PaperExample::new();
        let owned = paper_service_context();
        let from_owned = Bssr::new(&owned.query_context()).run(&ex.query()).unwrap();
        let from_borrowed = Bssr::new(&ex.context()).run(&ex.query()).unwrap();
        assert_eq!(from_owned.routes, from_borrowed.routes);
        // An untouched context pins epoch 0, and its pin answers agree too.
        let pinned = owned.pin();
        assert_eq!(pinned.epoch(), EpochId::BASE);
        let from_pinned = Bssr::new(&pinned.query_context()).run(&ex.query()).unwrap();
        assert_eq!(from_pinned.routes, from_borrowed.routes);
    }

    #[test]
    fn shared_across_threads() {
        let ex = PaperExample::new();
        let ctx = std::sync::Arc::new(paper_service_context());
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let ctx = std::sync::Arc::clone(&ctx);
                let query = ex.query();
                std::thread::spawn(move || {
                    Bssr::new(&ctx.pin().query_context()).run(&query).unwrap().routes
                })
            })
            .collect();
        let results: Vec<_> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        for r in &results[1..] {
            assert_eq!(r, &results[0]);
        }
    }

    #[test]
    fn publishing_weights_moves_pins_but_not_existing_snapshots() {
        let ctx = paper_service_context();
        let before = ctx.pin();
        assert_eq!(ctx.current_epoch(), EpochId::BASE);
        // Reweight some edge of the paper graph (vq's first arc).
        let (from, to, w) = ctx.graph().arc(0);
        let e1 = ctx.publish_weights(&[WeightDelta::new(from, to, w.get() * 3.0)]);
        assert_eq!(e1, EpochId(1));
        assert_eq!(ctx.current_epoch(), EpochId(1));
        assert_eq!(before.epoch(), EpochId::BASE, "existing snapshot stays pinned");
        let after = ctx.pin();
        assert_eq!(after.epoch(), EpochId(1));
        // Historical pin round-trips.
        assert_eq!(ctx.pin_at(EpochId::BASE).unwrap().epoch(), EpochId::BASE);
        assert!(ctx.pin_at(EpochId(7)).is_none());
    }

    #[test]
    fn debug_shows_sizes() {
        let s = format!("{:?}", paper_service_context());
        assert!(s.contains("vertices"), "{s}");
        assert!(s.contains("epoch"), "{s}");
    }
}
