//! The paper's Table 1 scenario, built by hand with the public API: a New
//! York walk through a cupcake shop, an art museum and a jazz club.
//!
//! An exact-match route exists but is long; the SkySR query also surfaces
//! progressively shorter routes that substitute semantically similar PoIs
//! (dessert shop for cupcake shop, plain museum for art museum, music
//! venue for jazz club) — reproducing Table 1's four rows exactly.
//!
//! ```text
//! cargo run --release --example city_trip
//! ```

use skysr::category::foursquare::foursquare_forest;
use skysr::core::bssr::Bssr;
use skysr::core::{PoiTable, QueryContext, SkySrQuery};
use skysr::graph::GraphBuilder;

fn main() {
    let forest = foursquare_forest();
    let cat = |n: &str| forest.by_name(n).expect("category exists");

    // A hand-drawn Manhattan corner. Distances in metres.
    let mut g = GraphBuilder::new();
    let vq = g.add_vertex();
    let cupcake = g.add_vertex();
    let dessert = g.add_vertex();
    let art_museum = g.add_vertex();
    let museum = g.add_vertex();
    let jazz = g.add_vertex();
    let music_venue = g.add_vertex();
    g.add_edge(vq, cupcake, 1500.0);
    g.add_edge(cupcake, art_museum, 781.0);
    g.add_edge(vq, dessert, 200.0);
    g.add_edge(dessert, museum, 300.0);
    g.add_edge(dessert, art_museum, 700.0);
    g.add_edge(museum, jazz, 892.0);
    g.add_edge(museum, music_venue, 323.0);
    g.add_edge(art_museum, jazz, 958.0);
    let graph = g.build();

    let mut pois = PoiTable::new(graph.num_vertices());
    pois.add_poi(cupcake, cat("Cupcake Shop"));
    pois.add_poi(dessert, cat("Dessert Shop"));
    pois.add_poi(art_museum, cat("Art Museum"));
    pois.add_poi(museum, cat("Museum"));
    pois.add_poi(jazz, cat("Jazz Club"));
    pois.add_poi(music_venue, cat("Music Venue"));
    pois.finalize(&forest);

    let ctx = QueryContext::new(&graph, &forest, &pois);
    let query = SkySrQuery::new(vq, [cat("Cupcake Shop"), cat("Art Museum"), cat("Jazz Club")]);
    let result = Bssr::new(&ctx).run(&query).expect("valid query");

    println!("Table 1 — skyline routes for <Cupcake Shop, Art Museum, Jazz Club>:\n");
    println!("{:>12}  {:>9}  route", "distance", "semantic");
    for r in result.routes.iter().rev() {
        let stops: Vec<&str> =
            r.pois.iter().map(|&p| forest.name(pois.categories_of(p)[0])).collect();
        println!("{:>9.0} m   {:>9.3}  {}", r.length.get(), r.semantic, stops.join(" -> "));
    }

    // The existing approaches of the paper's §1 return only the first row;
    // the three shorter rows are what the semantic hierarchy buys.
    assert_eq!(result.routes.len(), 4);
}
