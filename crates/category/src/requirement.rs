//! Complex category requirements (paper §6, "Complex category
//! requirement").
//!
//! A query position may ask for more than one plain category: *"American
//! restaurant or Mexican restaurant (disjunction), but not Taco Place
//! (negation)"*; with multi-category PoIs, conjunctions like *"Cafe and
//! Bakery"* become possible. A [`Requirement`] is evaluated against a PoI's
//! category set and yields the position similarity `h_i` fed into the
//! semantic score — so, exactly as §6 observes, the search algorithms need
//! no changes: a requirement is just a richer similarity oracle.

use crate::similarity::Similarity;
use crate::tree::{CategoryForest, CategoryId};

/// A category requirement for one position of a sequence.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Requirement {
    /// A single category (Definition 3.1 behaviour).
    Category(CategoryId),
    /// Disjunction: the PoI may satisfy any branch; similarity is the best
    /// branch.
    AnyOf(Vec<Requirement>),
    /// Conjunction: the PoI must satisfy every branch; similarity is the
    /// worst branch (a PoI missing one branch entirely scores 0).
    AllOf(Vec<Requirement>),
    /// Negation: as `base`, but PoIs associated with `not` (or any of its
    /// descendants) are excluded outright.
    Exclude {
        /// The underlying requirement.
        base: Box<Requirement>,
        /// Excluded category subtree.
        not: CategoryId,
    },
}

impl Requirement {
    /// Single-category requirement.
    pub fn category(c: CategoryId) -> Requirement {
        Requirement::Category(c)
    }

    /// Disjunction of plain categories.
    pub fn any_of(cats: impl IntoIterator<Item = CategoryId>) -> Requirement {
        Requirement::AnyOf(cats.into_iter().map(Requirement::Category).collect())
    }

    /// Conjunction of plain categories.
    pub fn all_of(cats: impl IntoIterator<Item = CategoryId>) -> Requirement {
        Requirement::AllOf(cats.into_iter().map(Requirement::Category).collect())
    }

    /// Adds an exclusion to `self`.
    pub fn but_not(self, not: CategoryId) -> Requirement {
        Requirement::Exclude { base: Box::new(self), not }
    }

    /// Similarity of a PoI with category set `poi_cats` to this
    /// requirement. With multiple PoI categories, §6 allows "the highest or
    /// the average value"; we use the highest.
    pub fn similarity<S: Similarity>(
        &self,
        forest: &CategoryForest,
        sim: &S,
        poi_cats: &[CategoryId],
    ) -> f64 {
        match self {
            Requirement::Category(c) => {
                poi_cats.iter().map(|&pc| sim.sim(forest, *c, pc)).fold(0.0, f64::max)
            }
            Requirement::AnyOf(parts) => {
                parts.iter().map(|p| p.similarity(forest, sim, poi_cats)).fold(0.0, f64::max)
            }
            Requirement::AllOf(parts) => {
                parts.iter().map(|p| p.similarity(forest, sim, poi_cats)).fold(1.0, f64::min)
            }
            Requirement::Exclude { base, not } => {
                let excluded = poi_cats.iter().any(|&pc| forest.is_ancestor_or_self(*not, pc));
                if excluded {
                    0.0
                } else {
                    base.similarity(forest, sim, poi_cats)
                }
            }
        }
    }

    /// Whether a PoI perfectly matches this requirement (similarity 1).
    pub fn perfect<S: Similarity>(
        &self,
        forest: &CategoryForest,
        sim: &S,
        poi_cats: &[CategoryId],
    ) -> bool {
        self.similarity(forest, sim, poi_cats) >= 1.0
    }

    /// All plain categories referenced by this requirement (used to derive
    /// candidate PoI sets).
    pub fn referenced_categories(&self) -> Vec<CategoryId> {
        let mut out = Vec::new();
        self.collect(&mut out);
        out
    }

    fn collect(&self, out: &mut Vec<CategoryId>) {
        match self {
            Requirement::Category(c) => out.push(*c),
            Requirement::AnyOf(parts) | Requirement::AllOf(parts) => {
                for p in parts {
                    p.collect(out);
                }
            }
            Requirement::Exclude { base, .. } => base.collect(out),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::similarity::WuPalmer;
    use crate::tree::ForestBuilder;

    fn forest() -> CategoryForest {
        let mut b = ForestBuilder::new();
        let food = b.add_root("Food");
        let mex = b.add_child(food, "Mexican");
        b.add_child(mex, "Taco Place");
        b.add_child(food, "American");
        b.add_child(food, "Cafe");
        b.add_child(food, "Bakery");
        let shop = b.add_root("Shop");
        b.add_child(shop, "Gift");
        b.build()
    }

    #[test]
    fn single_category_matches_definition() {
        let f = forest();
        let mex = f.by_name("Mexican").unwrap();
        let am = f.by_name("American").unwrap();
        let r = Requirement::category(mex);
        assert_eq!(r.similarity(&f, &WuPalmer, &[mex]), 1.0);
        assert!(r.similarity(&f, &WuPalmer, &[am]) > 0.0);
        let gift = f.by_name("Gift").unwrap();
        assert_eq!(r.similarity(&f, &WuPalmer, &[gift]), 0.0);
    }

    #[test]
    fn disjunction_takes_best_branch() {
        let f = forest();
        let mex = f.by_name("Mexican").unwrap();
        let am = f.by_name("American").unwrap();
        let r = Requirement::any_of([am, mex]);
        assert_eq!(r.similarity(&f, &WuPalmer, &[mex]), 1.0);
        assert_eq!(r.similarity(&f, &WuPalmer, &[am]), 1.0);
        assert!(r.perfect(&f, &WuPalmer, &[mex]));
    }

    #[test]
    fn negation_excludes_subtree() {
        let f = forest();
        let mex = f.by_name("Mexican").unwrap();
        let am = f.by_name("American").unwrap();
        let taco = f.by_name("Taco Place").unwrap();
        // §6's example: "American or Mexican, but not Taco Place".
        let r = Requirement::any_of([am, mex]).but_not(taco);
        assert_eq!(r.similarity(&f, &WuPalmer, &[taco]), 0.0);
        assert_eq!(r.similarity(&f, &WuPalmer, &[mex]), 1.0);
    }

    #[test]
    fn conjunction_requires_all() {
        let f = forest();
        let cafe = f.by_name("Cafe").unwrap();
        let bakery = f.by_name("Bakery").unwrap();
        let r = Requirement::all_of([cafe, bakery]);
        // A multi-category PoI tagged with both matches perfectly.
        assert!(r.perfect(&f, &WuPalmer, &[cafe, bakery]));
        // A cafe-only PoI gets the weaker of (1.0, sim(bakery, cafe)) < 1.
        let s = r.similarity(&f, &WuPalmer, &[cafe]);
        assert!(s > 0.0 && s < 1.0);
        // A shop PoI fails the conjunction entirely.
        let gift = f.by_name("Gift").unwrap();
        assert_eq!(r.similarity(&f, &WuPalmer, &[gift]), 0.0);
    }

    #[test]
    fn multi_category_poi_takes_highest() {
        let f = forest();
        let cafe = f.by_name("Cafe").unwrap();
        let gift = f.by_name("Gift").unwrap();
        let r = Requirement::category(cafe);
        assert_eq!(r.similarity(&f, &WuPalmer, &[gift, cafe]), 1.0);
    }

    #[test]
    fn referenced_categories_collects_all() {
        let f = forest();
        let mex = f.by_name("Mexican").unwrap();
        let am = f.by_name("American").unwrap();
        let taco = f.by_name("Taco Place").unwrap();
        let r = Requirement::any_of([am, mex]).but_not(taco);
        let refs = r.referenced_categories();
        assert!(refs.contains(&am) && refs.contains(&mex));
        assert!(!refs.contains(&taco));
    }

    #[test]
    fn empty_poi_category_list_scores_zero() {
        let f = forest();
        let mex = f.by_name("Mexican").unwrap();
        assert_eq!(Requirement::category(mex).similarity(&f, &WuPalmer, &[]), 0.0);
    }
}
