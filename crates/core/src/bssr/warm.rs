//! Warm start from a cached prefix skyline (semantic cache reuse).
//!
//! A skyline route for the prefix sequence ⟨c₁, …, c_{k−1}⟩ is, by
//! Definition 3.4, a valid partial route for the full query
//! ⟨c₁, …, c_{k−1}, c_k⟩: every completion of it with a PoI matching the
//! last position is a valid sequenced route. Seeding those completions into
//! the skyline set *before* the branch-and-bound search starts tightens the
//! pruning thresholds of Definition 5.4 — the exact mechanism NNinit
//! (§5.3.1) uses, but starting from the *Pareto-optimal* prefix trade-offs
//! instead of one greedy chain, so the seeded upper bounds are usually
//! tighter and more varied in semantic score.
//!
//! Correctness is inherited from the NNinit argument (Lemma 5.1/5.3): the
//! threshold only ever prunes routes that some inserted *valid* route
//! dominates, so any set of valid seed routes keeps the search exact. The
//! seeds here are valid by construction — prefix PoIs come from a prefix
//! skyline over the same start vertex, the appended PoI semantically
//! matches the last position and is not already on the route.

use skysr_graph::{dijkstra_with, Cost, DijkstraWorkspace, Settle};

use crate::context::QueryContext;
use crate::dominance::SkylineSet;
use crate::prepared::PreparedQuery;
use crate::route::SkylineRoute;
use crate::stats::QueryStats;

/// Extends every route of a (k−1)-position prefix skyline with reachable
/// matches for the last position of `pq`, inserting the completed routes
/// into `skyline`. Returns the number of seed routes inserted (also
/// recorded as [`QueryStats::warm_seed_routes`]).
///
/// Seeds of *full* length k are also accepted (since the incremental
/// repair work): they are validated against the query's positions,
/// rescored semantically, and inserted directly — no extension leg runs.
/// This is how repair's rescored survivors and epoch-crossing prefix
/// entries re-enter a search as thresholds.
///
/// Each seed's semantic score is recomputed from `pq`'s own positions (not
/// taken from the seed route), so any same-start skyline whose PoIs match
/// the corresponding positions produces a correctly scored seed; routes
/// whose shape does not fit (wrong length, a PoI that does not match its
/// position, duplicated PoIs) are skipped, so a stale or foreign skyline
/// degrades to a cold start.
///
/// **Precondition:** every seed route's `length` must be a genuine
/// accumulated shortest-path length from `pq.start` through its PoIs *at
/// this context's weight epoch* — the invariant of any skyline computed
/// for the same start vertex and epoch. An understated length would
/// over-tighten the pruning threshold and break exactness; this cannot be
/// validated cheaply here, and the cache-keyed caller (`skysr-service`)
/// guarantees it structurally (same-epoch entries, or entries proven
/// untouched by the epoch delta).
pub fn seed_prefix_routes(
    ctx: &QueryContext<'_>,
    pq: &PreparedQuery,
    prefix: &[SkylineRoute],
    ws: &mut DijkstraWorkspace,
    skyline: &mut SkylineSet,
    stats: &mut QueryStats,
) -> usize {
    let k = pq.len();
    let last = match pq.positions.last() {
        Some(p) => p,
        None => return 0,
    };
    let mut seeded = 0;
    for route in prefix {
        if route.pois.len() == k {
            // Full-length seed: validate and insert as-is.
            if valid_full_seed(ctx, pq, route) {
                let sim_acc: f64 = route
                    .pois
                    .iter()
                    .enumerate()
                    .map(|(i, &p)| pq.positions[i].sim_of(ctx, p))
                    .product();
                if skyline.update(SkylineRoute {
                    pois: route.pois.clone(),
                    length: route.length,
                    semantic: 1.0 - sim_acc,
                }) {
                    seeded += 1;
                }
            }
            continue;
        }
        if route.pois.len() + 1 != k || route.pois.is_empty() {
            continue;
        }
        // Recompute the similarity accumulator Π h_i under *this* query's
        // positions (multiplied in position order, exactly as the engine
        // accumulates it). A PoI that does not match disqualifies the
        // route.
        let mut sim_acc = 1.0;
        let mut valid = true;
        for (i, &p) in route.pois.iter().enumerate() {
            let s = pq.positions[i].sim_of(ctx, p);
            if s <= 0.0 {
                valid = false;
                break;
            }
            sim_acc *= s;
        }
        if !valid {
            continue;
        }
        let source = *route.pois.last().expect("non-empty checked");
        let search_stats = dijkstra_with(ctx.graph, ws, &[(source, Cost::ZERO)], |u, d| {
            if route.pois.contains(&u) {
                // Definition 3.4(iii): PoI vertices must be distinct.
                return Settle::Continue;
            }
            let sim = last.sim_of(ctx, u);
            if sim > 0.0 {
                let mut pois = Vec::with_capacity(k);
                pois.extend_from_slice(&route.pois);
                pois.push(u);
                // Only completions that actually enter the set count as
                // seeds — dominated candidates contributed nothing, and
                // the warm/cold classification downstream relies on that.
                if skyline.update(SkylineRoute {
                    pois,
                    length: route.length + d,
                    semantic: 1.0 - sim_acc * sim,
                }) {
                    seeded += 1;
                }
                if sim >= 1.0 {
                    // Anything settling later is longer AND at best equally
                    // similar — dominated, so stop this leg (as NNinit's
                    // final leg does).
                    return Settle::Stop;
                }
            }
            Settle::Continue
        });
        stats.search.merge(&search_stats);
    }
    stats.warm_seed_routes = seeded;
    seeded
}

/// Whether `route` is a structurally valid full-length (k PoIs, distinct,
/// every PoI matching its position) sequenced route for `pq`.
fn valid_full_seed(ctx: &QueryContext<'_>, pq: &PreparedQuery, route: &SkylineRoute) -> bool {
    if route.pois.len() != pq.len() {
        return false;
    }
    for (i, &p) in route.pois.iter().enumerate() {
        if pq.positions[i].sim_of(ctx, p) <= 0.0 {
            return false;
        }
        // Definition 3.4(iii): PoI vertices must be distinct.
        if route.pois[..i].contains(&p) {
            return false;
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bssr::Bssr;
    use crate::paper_example::PaperExample;
    use crate::query::SkySrQuery;
    use skysr_graph::VertexId;

    fn fixture() -> (PaperExample, SkySrQuery) {
        let ex = PaperExample::new();
        let q = ex.query();
        (ex, q)
    }

    #[test]
    fn seeds_complete_valid_routes_from_a_prefix_skyline() {
        let (ex, full) = fixture();
        let ctx = ex.context();
        // Cold skyline of the 2-position prefix.
        let prefix_query = SkySrQuery::with_positions(
            full.start,
            full.sequence[..full.sequence.len() - 1].to_vec(),
        );
        let prefix = Bssr::new(&ctx).run(&prefix_query).unwrap().routes;
        assert!(!prefix.is_empty());

        let pq = crate::prepared::PreparedQuery::prepare(&ctx, &full).unwrap();
        let mut ws = DijkstraWorkspace::new(ctx.graph.num_vertices());
        let mut skyline = SkylineSet::new();
        let mut stats = QueryStats::default();
        let n = seed_prefix_routes(&ctx, &pq, &prefix, &mut ws, &mut skyline, &mut stats);
        assert!(n > 0);
        assert_eq!(stats.warm_seed_routes, n);
        // Every seeded member is a full-length route with distinct PoIs and
        // scores no better than the true skyline permits.
        let truth = Bssr::new(&ctx).run(&full).unwrap().routes;
        for r in skyline.routes() {
            assert_eq!(r.pois.len(), full.len());
            let mut pois = r.pois.clone();
            pois.sort_unstable();
            pois.dedup();
            assert_eq!(pois.len(), full.len(), "distinct PoIs");
            assert!(
                truth.iter().any(|t| !r.dominates(t)),
                "a seed cannot dominate the exact skyline"
            );
        }
    }

    #[test]
    fn malformed_prefixes_are_skipped() {
        let (ex, full) = fixture();
        let ctx = ex.context();
        let pq = crate::prepared::PreparedQuery::prepare(&ctx, &full).unwrap();
        let mut ws = DijkstraWorkspace::new(ctx.graph.num_vertices());
        let mut skyline = SkylineSet::new();
        let mut stats = QueryStats::default();
        let bad = vec![
            // Wrong length for a (k−1)-prefix.
            SkylineRoute { pois: vec![ex.p(2)], length: Cost::new(1.0), semantic: 0.0 },
            // Right length but a PoI that cannot match position 0
            // (vertex 0 is not a PoI at all).
            SkylineRoute {
                pois: vec![VertexId(0), ex.p(5)],
                length: Cost::new(1.0),
                semantic: 0.0,
            },
        ];
        let n = seed_prefix_routes(&ctx, &pq, &bad, &mut ws, &mut skyline, &mut stats);
        assert_eq!(n, 0);
        assert!(skyline.is_empty());
    }
}
