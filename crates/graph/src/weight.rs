//! Totally ordered, NaN-free route cost.
//!
//! Edge weights in the paper are geographic distances (`w(u_i, u_j) ≥ 0`),
//! so `f64` is the natural representation — but `f64` is not `Ord`, which
//! makes it unusable as a `BinaryHeap` key. [`Cost`] is a thin newtype that
//! bans NaN at construction and therefore can expose a total order safely.

use std::cmp::Ordering;
use std::ops::{Add, AddAssign, Div, Mul, Sub};

/// A non-NaN `f64` cost with a total order.
///
/// `Cost` values may be `+∞` (used as "unreachable"/"no threshold"), but
/// never NaN: every constructor checks. Arithmetic is saturating in the
/// sense that `∞ + x = ∞`; subtracting `∞ − ∞` is the caller's bug and is
/// caught by the NaN check in debug builds.
#[derive(Clone, Copy, PartialEq)]
pub struct Cost(f64);

impl Cost {
    /// Zero cost.
    pub const ZERO: Cost = Cost(0.0);
    /// Unreachable / unbounded threshold.
    pub const INFINITY: Cost = Cost(f64::INFINITY);

    /// Wraps a raw `f64`, panicking on NaN.
    #[inline]
    pub fn new(v: f64) -> Cost {
        assert!(!v.is_nan(), "Cost must not be NaN");
        Cost(v)
    }

    /// Raw value accessor.
    #[inline]
    pub fn get(self) -> f64 {
        self.0
    }

    /// `true` iff this cost is finite (i.e. reachable).
    #[inline]
    pub fn is_finite(self) -> bool {
        self.0.is_finite()
    }

    /// Minimum of two costs.
    #[inline]
    pub fn min(self, other: Cost) -> Cost {
        if self <= other {
            self
        } else {
            other
        }
    }

    /// Maximum of two costs.
    #[inline]
    pub fn max(self, other: Cost) -> Cost {
        if self >= other {
            self
        } else {
            other
        }
    }
}

impl Eq for Cost {}

impl PartialOrd for Cost {
    #[inline]
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Cost {
    #[inline]
    fn cmp(&self, other: &Self) -> Ordering {
        // NaN is banned at construction, so total_cmp and the IEEE partial
        // order agree and this is a proper total order.
        self.0.total_cmp(&other.0)
    }
}

impl std::hash::Hash for Cost {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        // -0.0 and 0.0 compare equal; normalise so Hash agrees with Eq.
        let v = if self.0 == 0.0 { 0.0f64 } else { self.0 };
        v.to_bits().hash(state);
    }
}

impl Add for Cost {
    type Output = Cost;
    #[inline]
    fn add(self, rhs: Cost) -> Cost {
        Cost::new(self.0 + rhs.0)
    }
}

impl AddAssign for Cost {
    #[inline]
    fn add_assign(&mut self, rhs: Cost) {
        *self = *self + rhs;
    }
}

impl Sub for Cost {
    type Output = Cost;
    #[inline]
    fn sub(self, rhs: Cost) -> Cost {
        Cost::new(self.0 - rhs.0)
    }
}

impl Mul<f64> for Cost {
    type Output = Cost;
    #[inline]
    fn mul(self, rhs: f64) -> Cost {
        Cost::new(self.0 * rhs)
    }
}

impl Div<f64> for Cost {
    type Output = Cost;
    #[inline]
    fn div(self, rhs: f64) -> Cost {
        Cost::new(self.0 / rhs)
    }
}

impl std::iter::Sum for Cost {
    fn sum<I: Iterator<Item = Cost>>(iter: I) -> Cost {
        iter.fold(Cost::ZERO, Add::add)
    }
}

impl Default for Cost {
    fn default() -> Self {
        Cost::ZERO
    }
}

impl std::fmt::Debug for Cost {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:.3}", self.0)
    }
}

impl std::fmt::Display for Cost {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        std::fmt::Display::fmt(&self.0, f)
    }
}

impl From<f64> for Cost {
    #[inline]
    fn from(v: f64) -> Cost {
        Cost::new(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering_is_total_and_numeric() {
        assert!(Cost::new(1.0) < Cost::new(2.0));
        assert!(Cost::ZERO < Cost::INFINITY);
        assert!(Cost::new(5.0) < Cost::INFINITY);
        assert_eq!(Cost::new(3.0).max(Cost::new(4.0)), Cost::new(4.0));
        assert_eq!(Cost::new(3.0).min(Cost::new(4.0)), Cost::new(3.0));
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn nan_is_rejected() {
        let _ = Cost::new(f64::NAN);
    }

    #[test]
    fn arithmetic() {
        let a = Cost::new(1.5);
        let b = Cost::new(2.5);
        assert_eq!(a + b, Cost::new(4.0));
        assert_eq!(b - a, Cost::new(1.0));
        assert_eq!(a * 2.0, Cost::new(3.0));
        assert_eq!(b / 2.0, Cost::new(1.25));
        let mut c = a;
        c += b;
        assert_eq!(c, Cost::new(4.0));
    }

    #[test]
    fn infinity_propagates_through_add() {
        assert_eq!(Cost::INFINITY + Cost::new(1.0), Cost::INFINITY);
        assert!(!Cost::INFINITY.is_finite());
        assert!(Cost::new(0.0).is_finite());
    }

    #[test]
    fn sum_of_costs() {
        let total: Cost = [1.0, 2.0, 3.0].into_iter().map(Cost::new).sum();
        assert_eq!(total, Cost::new(6.0));
        let empty: Cost = std::iter::empty::<Cost>().sum();
        assert_eq!(empty, Cost::ZERO);
    }

    #[test]
    fn zero_and_negative_zero_hash_identically() {
        use std::collections::hash_map::DefaultHasher;
        use std::hash::{Hash, Hasher};
        let h = |c: Cost| {
            let mut s = DefaultHasher::new();
            c.hash(&mut s);
            s.finish()
        };
        assert_eq!(Cost::new(0.0), Cost::new(-0.0));
        assert_eq!(h(Cost::new(0.0)), h(Cost::new(-0.0)));
    }
}
