//! The query service: shared context + worker pool + cache + in-flight
//! coalescing + metrics, epoch-consistent under dynamic edge weights.

use std::sync::mpsc;
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use skysr_core::bssr::repair::wholesale_untouched;
use skysr_core::bssr::{Bssr, BssrConfig, BssrScratch};
use skysr_core::error::QueryError;
use skysr_core::query::SkySrQuery;
use skysr_core::route::SkylineRoute;
use skysr_graph::EpochId;

use crate::cache::{Lookup, QueryKey, ResultCache};
use crate::context::ServiceContext;
use crate::metrics::{MetricsRecorder, MetricsSnapshot, Served};
use crate::pool::{Begin, BoundedQueue, InflightTable};

/// Sizing and engine configuration of a [`QueryService`].
#[derive(Clone, Debug)]
pub struct ServiceConfig {
    /// Worker threads. `0` means "one per available CPU".
    pub workers: usize,
    /// Bounded submission-queue capacity; full ⇒ `submit` blocks.
    pub queue_capacity: usize,
    /// Result-cache entries; `0` disables caching.
    pub cache_capacity: usize,
    /// Request coalescing: concurrent duplicate queries block on one
    /// computation and all receive the shared result.
    pub coalesce: bool,
    /// Semantic prefix reuse: a cached skyline for ⟨c₁,…,c_{k−1}⟩
    /// warm-starts the search for ⟨c₁,…,c_k⟩. Requires caching.
    pub prefix_reuse: bool,
    /// Incremental skyline repair: a cache hit at an *older* weight epoch
    /// is repaired against the exact epoch delta (and promoted in place)
    /// instead of being lazily invalidated and recomputed. Also lets
    /// one-epoch-stale prefix entries seed warm starts when the delta
    /// provably does not touch them. Requires caching; answers remain
    /// oracle-exact at the pinned epoch.
    pub repair: bool,
    /// Engine configuration every worker runs with.
    pub engine: BssrConfig,
}

impl Default for ServiceConfig {
    fn default() -> ServiceConfig {
        ServiceConfig {
            workers: 0,
            queue_capacity: 256,
            cache_capacity: 1024,
            coalesce: true,
            prefix_reuse: true,
            repair: false,
            engine: BssrConfig::default(),
        }
    }
}

/// A successfully answered query.
#[derive(Clone, Debug)]
pub struct QueryResponse {
    /// The skyline routes, shared with the cache (and other waiters).
    pub routes: Arc<[SkylineRoute]>,
    /// The weight epoch the request was pinned to — the routes are exact
    /// for precisely this epoch's edge weights.
    pub epoch: EpochId,
    /// Whether the answer came from the result cache.
    pub cache_hit: bool,
    /// Whether the answer was computed by another request's in-flight
    /// search this one coalesced onto.
    pub coalesced: bool,
    /// Whether the answer came from incrementally repairing a cached
    /// skyline of an older epoch (in place or via the seeded fallback).
    pub repaired: bool,
    /// Submission-to-completion latency (queueing included).
    pub latency: Duration,
}

/// Waitable handle for one submitted query.
pub struct Ticket {
    rx: mpsc::Receiver<Result<QueryResponse, QueryError>>,
}

impl Ticket {
    /// Blocks until the worker finishes this query.
    pub fn wait(self) -> Result<QueryResponse, QueryError> {
        self.rx.recv().expect("worker dropped a job without responding")
    }
}

struct Job {
    query: SkySrQuery,
    submitted: Instant,
    reply: mpsc::Sender<Result<QueryResponse, QueryError>>,
}

/// What an in-flight leader owes a parked duplicate request: its reply
/// channel and its own submission instant (so coalesced answers report
/// their true latency).
struct Waiter {
    reply: mpsc::Sender<Result<QueryResponse, QueryError>>,
    submitted: Instant,
}

/// Coalescing key: one flight per canonical query *per weight epoch*. A
/// request pinned to epoch N+1 must never join (and be answered by) a
/// leader that is searching epoch-N weights, so the epoch is part of the
/// flight identity.
type FlightKey = (QueryKey, EpochId);

/// A multi-threaded in-process SkySR query engine.
///
/// Construction spawns the worker pool; each worker owns a [`Bssr`] engine
/// (reusing its Dijkstra workspace and scratch state across queries) over
/// the shared [`ServiceContext`]. Before each job the worker re-pins the
/// context's current weight epoch, so published weight updates take effect
/// on the next dequeued query while in-progress searches finish on their
/// own consistent snapshot. Dropping the service closes the submission
/// queue, drains in-flight work and joins every worker.
pub struct QueryService {
    ctx: Arc<ServiceContext>,
    queue: Arc<BoundedQueue<Job>>,
    cache: Arc<ResultCache>,
    metrics: Arc<MetricsRecorder>,
    workers: Vec<JoinHandle<()>>,
    started: Instant,
    config: ServiceConfig,
}

/// Per-worker reuse switches, resolved once at spawn time.
#[derive(Clone, Copy)]
struct ReuseOpts {
    caching: bool,
    coalesce: bool,
    prefix_reuse: bool,
    repair: bool,
}

impl QueryService {
    /// Spawns a service over `ctx` with `config`.
    pub fn new(ctx: Arc<ServiceContext>, config: ServiceConfig) -> QueryService {
        let workers = if config.workers == 0 {
            std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4)
        } else {
            config.workers
        };
        let queue = Arc::new(BoundedQueue::new(config.queue_capacity.max(1)));
        // Capacity 0 disables caching: keep a 1-entry cache object for
        // uniform counters but never consult it. Prefix reuse reads the
        // cache, so it is implied off without one.
        let opts = ReuseOpts {
            caching: config.cache_capacity > 0,
            coalesce: config.coalesce,
            prefix_reuse: config.prefix_reuse && config.cache_capacity > 0,
            repair: config.repair && config.cache_capacity > 0,
        };
        let cache = Arc::new(ResultCache::new(config.cache_capacity.max(1)));
        let inflight: Arc<InflightTable<FlightKey, Waiter>> = Arc::new(InflightTable::new());
        let metrics = Arc::new(MetricsRecorder::default());

        let handles = (0..workers)
            .map(|i| {
                let ctx = Arc::clone(&ctx);
                let queue = Arc::clone(&queue);
                let cache = Arc::clone(&cache);
                let inflight = Arc::clone(&inflight);
                let metrics = Arc::clone(&metrics);
                let engine_cfg = config.engine;
                std::thread::Builder::new()
                    .name(format!("skysr-worker-{i}"))
                    .spawn(move || {
                        worker_loop(&ctx, &queue, &cache, &inflight, &metrics, engine_cfg, opts)
                    })
                    .expect("spawning a worker thread")
            })
            .collect();

        QueryService {
            ctx,
            queue,
            cache,
            metrics,
            workers: handles,
            started: Instant::now(),
            config,
        }
    }

    /// Service with the default configuration.
    pub fn with_defaults(ctx: Arc<ServiceContext>) -> QueryService {
        QueryService::new(ctx, ServiceConfig::default())
    }

    /// Enqueues one query. Blocks while the submission queue is full
    /// (backpressure).
    ///
    /// # Panics
    /// If called after the service started shutting down (impossible
    /// through the public API, which consumes the service on shutdown).
    pub fn submit(&self, query: SkySrQuery) -> Ticket {
        let (tx, rx) = mpsc::channel();
        let job = Job { query, submitted: Instant::now(), reply: tx };
        if self.queue.push(job).is_err() {
            unreachable!("submission queue closed while the service was alive");
        }
        Ticket { rx }
    }

    /// Submits every query and waits for all answers, preserving order.
    ///
    /// A batch larger than the queue capacity cannot deadlock the caller:
    /// the bounded queue holds only unstarted work and each ticket buffers
    /// its answer, so an oversized batch merely throttles submission to
    /// the workers' pace.
    pub fn run_batch(
        &self,
        queries: impl IntoIterator<Item = SkySrQuery>,
    ) -> Vec<Result<QueryResponse, QueryError>> {
        let tickets: Vec<Ticket> = queries.into_iter().map(|q| self.submit(q)).collect();
        tickets.into_iter().map(Ticket::wait).collect()
    }

    /// The shared context.
    pub fn context(&self) -> &Arc<ServiceContext> {
        &self.ctx
    }

    /// The configuration the service was built with (with `workers`
    /// resolved to the actual pool size).
    pub fn config(&self) -> ServiceConfig {
        ServiceConfig { workers: self.workers.len(), ..self.config.clone() }
    }

    /// Metrics snapshot over the service's lifetime so far.
    pub fn metrics(&self) -> MetricsSnapshot {
        self.metrics.snapshot(
            self.started.elapsed(),
            self.cache.counters(),
            self.ctx.epoch_gc_stats(),
        )
    }

    /// Closes the queue, drains in-flight work and joins the workers.
    pub fn shutdown(mut self) -> MetricsSnapshot {
        self.shutdown_in_place();
        self.metrics()
    }

    fn shutdown_in_place(&mut self) {
        self.queue.close();
        for handle in self.workers.drain(..) {
            // Propagate worker panics loudly — except while already
            // unwinding, where a second panic would abort the process and
            // destroy the original diagnostic.
            if handle.join().is_err() && !std::thread::panicking() {
                panic!("worker panicked");
            }
        }
    }
}

impl Drop for QueryService {
    fn drop(&mut self) {
        self.shutdown_in_place();
    }
}

/// Answers one waiter with the shared routes, recording its metrics.
fn respond(
    metrics: &MetricsRecorder,
    reply: &mpsc::Sender<Result<QueryResponse, QueryError>>,
    submitted: Instant,
    routes: Arc<[SkylineRoute]>,
    epoch: EpochId,
    served: Served,
) {
    let latency = submitted.elapsed();
    metrics.record(latency, routes.len(), served);
    let _ = reply.send(Ok(QueryResponse {
        routes,
        epoch,
        cache_hit: served == Served::CacheHit,
        coalesced: served == Served::Coalesced,
        repaired: matches!(served, Served::Repaired { .. }),
        latency,
    }));
}

/// The per-worker serving loop. For every job, in order:
///
/// 1. **Pin.** The worker refreshes its [`PinnedContext`] snapshot if the
///    context's weight epoch advanced since the previous job. The whole
///    request — cache lookup, coalescing, search, cache fill — runs
///    against that one pinned epoch.
/// 2. **Cache.** A canonical-key hit *stamped with the pinned epoch*
///    answers immediately. The cache never returns cross-epoch entries
///    (older ones are lazily invalidated); the worker still re-checks the
///    returned stamp and counts a stale serve if it ever mismatched.
/// 3. **Coalescing.** `InflightTable::begin` on the (key, epoch) pair
///    atomically either parks this request under an in-flight duplicate of
///    the same epoch (the worker moves on — the leader will answer it) or
///    elects this worker the flight's leader. Requests pinned to different
///    epochs never share a flight. A fresh leader re-probes the cache
///    before searching: its own lookup in step 2 may have raced a previous
///    leader of the same flight, which filled the cache and completed
///    between the miss and the `begin`.
/// 4. **Semantic reuse.** The leader probes the cache for the query's
///    (k−1)-prefix skyline — same epoch only — and warm-starts the search
///    with it.
/// 5. **Completion.** The leader inserts the epoch-stamped result into the
///    cache *before* ending the flight — any same-epoch duplicate arriving
///    in between hits the cache, so with caching enabled a (key, epoch) can
///    never be searched twice concurrently nor re-searched after a
///    coalesced flight completes. The insert refuses to overwrite a
///    newer-epoch entry, so a flight that straddled an update cannot
///    poison the cache for post-update traffic. Then it answers itself and
///    every parked waiter with the same `Arc`'d skyline. Failures
///    propagate to all waiters (they asked the same invalid query) and are
///    never cached.
///
/// [`PinnedContext`]: crate::context::PinnedContext
fn worker_loop(
    ctx: &ServiceContext,
    queue: &BoundedQueue<Job>,
    cache: &ResultCache,
    inflight: &InflightTable<FlightKey, Waiter>,
    metrics: &MetricsRecorder,
    engine_cfg: BssrConfig,
    opts: ReuseOpts,
) {
    let mut pinned = ctx.pin();
    // One engine scratch per worker for its whole lifetime: re-pinning an
    // epoch rebuilds the engine view but recycles the (large, already
    // paged-in) workspaces.
    let mut scratch = Some(BssrScratch::new(pinned.graph().num_vertices()));
    while let Some(job) = queue.pop() {
        if pinned.epoch() != ctx.current_epoch() {
            pinned = ctx.pin();
        }
        let epoch = pinned.epoch();
        let Job { query, submitted, reply } = job;
        let key =
            (opts.caching || opts.coalesce).then(|| QueryKey::canonicalize(&query, engine_cfg));
        // With repair on, a same-key entry at an older epoch is *kept* and
        // carried into the flight as repair raw material instead of being
        // lazily invalidated.
        let mut repair_src: Option<(EpochId, Arc<[SkylineRoute]>)> = None;
        if opts.caching {
            let key = key.as_ref().expect("caching implies a key");
            if opts.repair {
                match cache.get_for_repair(key, epoch) {
                    Lookup::Hit(routes) => {
                        respond(metrics, &reply, submitted, routes, epoch, Served::CacheHit);
                        continue;
                    }
                    Lookup::Stale(entry_epoch, routes) => repair_src = Some((entry_epoch, routes)),
                    Lookup::Miss => {}
                }
            } else if let Some((entry_epoch, routes)) = cache.get(key, epoch) {
                if entry_epoch == epoch {
                    respond(metrics, &reply, submitted, routes, epoch, Served::CacheHit);
                    continue;
                }
                // Unreachable unless the cache's epoch filter is broken:
                // refuse to serve the stale skyline, record the near-miss
                // for the staleness gate, and fall through to a fresh
                // search at the pinned epoch.
                metrics.record_stale_serve();
            }
        }
        let mut leader = Waiter { reply, submitted };
        // The flight identity of this request, built once; `None` when
        // coalescing is off.
        let fkey: Option<FlightKey> =
            opts.coalesce.then(|| (key.clone().expect("coalescing implies a key"), epoch));
        if let Some(fk) = &fkey {
            match inflight.begin(fk.clone(), leader) {
                Begin::Joined => continue,
                Begin::Leader(w) => leader = w,
            }
            // Close the miss-then-begin window: between this worker's
            // cache miss and winning the flight, a previous leader for the
            // same (key, epoch) may have filled the cache and completed.
            // Re-probe so a flight completed moments ago is never
            // re-searched; on a hit, the request's already-counted miss is
            // reclassified so the exact-counter invariants survive the
            // race. With repair on, the probe must not lazily invalidate
            // an older entry — that entry is this flight's repair source.
            if opts.caching {
                let reprobe = if opts.repair {
                    cache.peek_stale(&fk.0, epoch).filter(|&(e, _)| e == epoch)
                } else {
                    cache.peek(&fk.0, epoch)
                };
                if let Some((_, routes)) = reprobe {
                    cache.reclassify_miss_as_hit();
                    let waiters = inflight.complete(fk);
                    respond(
                        metrics,
                        &leader.reply,
                        leader.submitted,
                        Arc::clone(&routes),
                        epoch,
                        Served::CacheHit,
                    );
                    for w in waiters {
                        respond(
                            metrics,
                            &w.reply,
                            w.submitted,
                            Arc::clone(&routes),
                            epoch,
                            Served::Coalesced,
                        );
                    }
                    continue;
                }
            }
        }
        // An epoch delta is needed to repair; a compacted-away source
        // epoch degrades to an ordinary fresh search.
        let repair_attempt = repair_src
            .and_then(|(e, routes)| ctx.delta_between(e, epoch).map(|delta| (routes, delta)));
        // Prefix warm-start seeds. Same-epoch entries seed directly; with
        // repair on, an entry a few epochs behind is *rescued* when the
        // exact delta provably cannot touch it (the untouched lower-bound
        // check) — its lengths are then valid at the pinned epoch too.
        let seeds = if opts.prefix_reuse && repair_attempt.is_none() {
            key.as_ref().and_then(QueryKey::prefix).and_then(|pk| {
                if opts.repair {
                    cache.peek_stale(&pk, epoch).and_then(|(entry_epoch, routes)| {
                        if entry_epoch == epoch {
                            return Some((entry_epoch, routes));
                        }
                        if routes.is_empty() {
                            return None;
                        }
                        let delta = ctx.delta_between(entry_epoch, epoch)?;
                        let max_len = routes.iter().map(|r| r.length).max()?;
                        wholesale_untouched(&delta, ctx.landmarks(), query.start, max_len)
                            .then_some((entry_epoch, routes))
                    })
                } else {
                    // Same-epoch prefix skylines only: seeds scored under
                    // other weights would warm-start the search with
                    // invalid thresholds.
                    cache.peek(&pk, epoch)
                }
            })
        } else {
            None
        };
        let qctx = pinned.query_context();
        let mut engine =
            Bssr::with_scratch(&qctx, engine_cfg, scratch.take().expect("scratch is recycled"));
        let outcome = match (&repair_attempt, &seeds) {
            (Some((cached, delta)), _) => {
                engine.repair(&query, cached, delta, ctx.landmarks()).map(|r| {
                    let served = Served::Repaired {
                        fallback: !r.repair.repaired_in_place(),
                        routes_untouched: r.repair.routes_untouched,
                        routes_rescored: r.repair.routes_rescored,
                    };
                    (r.routes, served)
                })
            }
            (None, Some((_, prefix))) => engine.run_with_seeds(&query, prefix).map(|result| {
                // A prefix probe only helps when it actually seeded routes
                // (an unreachable last position can leave it dry).
                let warm = result.stats.warm_seed_routes > 0;
                (result.routes, Served::Search { warm })
            }),
            (None, None) => {
                engine.run(&query).map(|result| (result.routes, Served::Search { warm: false }))
            }
        };
        scratch = Some(engine.into_scratch());
        match outcome {
            Ok((routes, served)) => {
                let routes: Arc<[SkylineRoute]> = routes.into();
                if opts.caching {
                    cache.insert(key.expect("caching implies a key"), epoch, Arc::clone(&routes));
                }
                let waiters = match &fkey {
                    Some(fk) => inflight.complete(fk),
                    None => Vec::new(),
                };
                respond(
                    metrics,
                    &leader.reply,
                    leader.submitted,
                    Arc::clone(&routes),
                    epoch,
                    served,
                );
                for w in waiters {
                    respond(
                        metrics,
                        &w.reply,
                        w.submitted,
                        Arc::clone(&routes),
                        epoch,
                        Served::Coalesced,
                    );
                }
            }
            Err(e) => {
                let waiters = match &fkey {
                    Some(fk) => inflight.complete(fk),
                    None => Vec::new(),
                };
                metrics.record_failure();
                let _ = leader.reply.send(Err(e.clone()));
                for w in waiters {
                    metrics.record_failure();
                    let _ = w.reply.send(Err(e.clone()));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use skysr_core::paper_example::PaperExample;
    use skysr_graph::{VertexId, WeightDelta};

    fn service(workers: usize, cache: usize) -> (PaperExample, QueryService) {
        let ex = PaperExample::new();
        let ctx =
            Arc::new(ServiceContext::new(ex.graph.clone(), ex.forest.clone(), ex.pois.clone()));
        let cfg = ServiceConfig { workers, cache_capacity: cache, ..ServiceConfig::default() };
        (ex, QueryService::new(ctx, cfg))
    }

    #[test]
    fn answers_match_the_paper_example() {
        let (ex, service) = service(2, 16);
        let response = service.submit(ex.query()).wait().unwrap();
        assert_eq!(response.routes.len(), 2);
        assert!(!response.cache_hit);
        assert_eq!(response.epoch, EpochId::BASE);
        assert_eq!(response.routes[0].pois, vec![VertexId(6), VertexId(9), VertexId(8)]);
    }

    #[test]
    fn repeat_queries_hit_the_cache_with_identical_results() {
        let (ex, service) = service(1, 16);
        let cold = service.submit(ex.query()).wait().unwrap();
        let warm = service.submit(ex.query()).wait().unwrap();
        assert!(!cold.cache_hit);
        assert!(warm.cache_hit);
        assert_eq!(cold.routes, warm.routes);
        let m = service.metrics();
        assert_eq!(m.completed, 2);
        assert_eq!(m.executed, 1);
        assert_eq!(m.cache.hits, 1);
        assert_eq!(m.stale_served, 0);
    }

    #[test]
    fn cache_capacity_zero_disables_caching() {
        let (ex, service) = service(1, 0);
        service.submit(ex.query()).wait().unwrap();
        let again = service.submit(ex.query()).wait().unwrap();
        assert!(!again.cache_hit);
        assert_eq!(service.metrics().executed, 2);
    }

    #[test]
    fn invalid_queries_report_errors_not_hangs() {
        let (_ex, service) = service(2, 16);
        let bad = SkySrQuery::new(VertexId(9_999), [skysr_category::CategoryId(0)]);
        let err = service.submit(bad).wait().unwrap_err();
        assert_eq!(err, QueryError::UnknownStart(VertexId(9_999)));
        assert_eq!(service.metrics().failed, 1);
    }

    #[test]
    fn batches_larger_than_the_queue_complete() {
        let (ex, _) = service(1, 0);
        let ctx =
            Arc::new(ServiceContext::new(ex.graph.clone(), ex.forest.clone(), ex.pois.clone()));
        let svc = QueryService::new(
            ctx,
            ServiceConfig { workers: 2, queue_capacity: 2, ..ServiceConfig::default() },
        );
        let outcomes = svc.run_batch((0..64).map(|_| ex.query()));
        assert_eq!(outcomes.len(), 64);
        for o in outcomes {
            assert_eq!(o.unwrap().routes.len(), 2);
        }
        assert_eq!(svc.shutdown().completed, 64);
    }

    #[test]
    fn weight_update_invalidates_cached_answers() {
        // Cache the paper-example answer, triple the weight of the route's
        // first leg, and ask again: the service must re-search at the new
        // epoch (the old entry is lazily invalidated, never served) and the
        // two answers must carry their own epochs.
        let (ex, service) = service(1, 16);
        let before = service.submit(ex.query()).wait().unwrap();
        assert_eq!(before.epoch, EpochId::BASE);
        let (from, to, w) = service.context().graph().arc(0);
        let e1 = service.context().publish_weights(&[WeightDelta::new(from, to, w.get() * 3.0)]);
        let after = service.submit(ex.query()).wait().unwrap();
        assert_eq!(after.epoch, e1);
        assert!(!after.cache_hit, "the pre-update entry must not answer");
        let m = service.metrics();
        assert_eq!(m.executed, 2, "the post-update request re-searched");
        assert_eq!(m.cache.invalidations, 1, "the stale entry was dropped on lookup");
        assert_eq!(m.stale_served, 0);
        // The post-update entry serves post-update traffic.
        let again = service.submit(ex.query()).wait().unwrap();
        assert!(again.cache_hit);
        assert_eq!(again.epoch, e1);
        assert_eq!(again.routes, after.routes);
    }

    #[test]
    fn repair_promotes_stale_entries_in_place_and_stays_exact() {
        // With repair on, an epoch bump does not invalidate the cached
        // skyline: the next request repairs it against the exact delta,
        // promotes it to the new epoch, and the answer still matches a
        // fresh search at that epoch.
        let ex = PaperExample::new();
        let ctx =
            Arc::new(ServiceContext::new(ex.graph.clone(), ex.forest.clone(), ex.pois.clone()));
        let service = QueryService::new(
            Arc::clone(&ctx),
            ServiceConfig { workers: 1, repair: true, ..ServiceConfig::default() },
        );
        let before = service.submit(ex.query()).wait().unwrap();
        assert!(!before.repaired);
        // Touch an edge *on* the paper skyline's first route: repair must
        // detect the change and re-derive an exact answer.
        let (from, to, w) = ctx.graph().arc(0);
        let e1 = ctx.publish_weights(&[WeightDelta::new(from, to, w.get() * 3.0)]);
        let after = service.submit(ex.query()).wait().unwrap();
        assert_eq!(after.epoch, e1);
        assert!(after.repaired, "the stale entry was repaired, not recomputed blindly");
        assert!(!after.cache_hit);
        {
            use skysr_core::route::equivalent_skylines;
            let pinned = ctx.pin_at(e1).unwrap();
            let qctx = pinned.query_context();
            let oracle = skysr_core::bssr::Bssr::new(&qctx).run(&ex.query()).unwrap().routes;
            assert!(equivalent_skylines(&after.routes, &oracle), "repair is oracle-exact");
        }
        // The promoted entry now serves the new epoch from cache.
        let again = service.submit(ex.query()).wait().unwrap();
        assert!(again.cache_hit);
        assert_eq!(again.epoch, e1);
        let m = service.metrics();
        assert_eq!(m.repairs + m.repair_fallbacks, 1, "exactly one repair attempt ran");
        assert_eq!(m.cache.invalidations, 0, "repair replaces lazy invalidation");
        assert_eq!(m.stale_served, 0);
        assert_eq!(m.executed, 2, "initial search + the repair attempt");
    }

    #[test]
    fn repair_with_distant_updates_promotes_without_searching() {
        // An update far beyond the query's skyline radius must resolve as
        // an in-place repair (untouched tier) with byte-identical routes.
        let ex = PaperExample::new();
        let ctx =
            Arc::new(ServiceContext::new(ex.graph.clone(), ex.forest.clone(), ex.pois.clone()));
        let service = QueryService::new(
            Arc::clone(&ctx),
            ServiceConfig { workers: 1, repair: true, ..ServiceConfig::default() },
        );
        let before = service.submit(ex.query()).wait().unwrap();
        // Find an edge whose endpoints are farther from the start than the
        // longest skyline route could ever reach, by inflating weights of
        // an edge incident to no skyline route and far from vq... the
        // paper graph is small, so instead raise a far edge massively and
        // accept either outcome class — but the answer must stay exact and
        // the attempt must count.
        let (from, to, w) = ctx.graph().arc(ctx.graph().num_arcs() - 1);
        let e1 = ctx.publish_weights(&[WeightDelta::new(from, to, w.get() * 1.01)]);
        let after = service.submit(ex.query()).wait().unwrap();
        assert_eq!(after.epoch, e1);
        assert!(after.repaired);
        let pinned = ctx.pin_at(e1).unwrap();
        let qctx = pinned.query_context();
        let oracle = skysr_core::bssr::Bssr::new(&qctx).run(&ex.query()).unwrap().routes;
        use skysr_core::route::equivalent_skylines;
        assert!(equivalent_skylines(&after.routes, &oracle));
        assert_eq!(before.routes.len(), after.routes.len());
        let m = service.metrics();
        assert_eq!(m.repairs + m.repair_fallbacks, 1);
        assert_eq!(m.stale_served, 0);
    }
}
