//! Query context: everything a search needs borrowed together.

use skysr_category::{CategoryForest, Similarity, WuPalmer};
use skysr_graph::RoadNetwork;

use crate::poi::PoiTable;

static WU_PALMER: WuPalmer = WuPalmer;

/// Borrowed bundle of graph + category forest + PoI table + similarity
/// measure. All query algorithms take one of these.
#[derive(Clone, Copy)]
pub struct QueryContext<'a> {
    /// The road network `G = (V ∪ P, E)`.
    pub graph: &'a RoadNetwork,
    /// The category forest.
    pub forest: &'a CategoryForest,
    /// PoI ↔ category association (must be finalised).
    pub pois: &'a PoiTable,
    /// Category similarity measure (Eq. 6 by default).
    pub similarity: &'a dyn Similarity,
}

impl<'a> QueryContext<'a> {
    /// Context with the default Wu–Palmer similarity.
    pub fn new(
        graph: &'a RoadNetwork,
        forest: &'a CategoryForest,
        pois: &'a PoiTable,
    ) -> QueryContext<'a> {
        QueryContext { graph, forest, pois, similarity: &WU_PALMER }
    }

    /// Context with a custom similarity measure.
    pub fn with_similarity(
        graph: &'a RoadNetwork,
        forest: &'a CategoryForest,
        pois: &'a PoiTable,
        similarity: &'a dyn Similarity,
    ) -> QueryContext<'a> {
        QueryContext { graph, forest, pois, similarity }
    }

    /// The weight epoch of the graph view this context serves. Searches
    /// over the context are pinned to it.
    pub fn epoch(&self) -> skysr_graph::EpochId {
        self.graph.epoch()
    }
}

impl std::fmt::Debug for QueryContext<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("QueryContext")
            .field("vertices", &self.graph.num_vertices())
            .field("edges", &self.graph.num_edges())
            .field("pois", &self.pois.num_pois())
            .field("categories", &self.forest.num_categories())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use skysr_category::{ForestBuilder, PathLength};
    use skysr_graph::GraphBuilder;

    #[test]
    fn construction_and_debug() {
        let g = {
            let mut b = GraphBuilder::new();
            let v0 = b.add_vertex();
            let v1 = b.add_vertex();
            b.add_edge(v0, v1, 1.0);
            b.build()
        };
        let f = {
            let mut b = ForestBuilder::new();
            b.add_root("Food");
            b.build()
        };
        let mut p = PoiTable::new(g.num_vertices());
        p.finalize(&f);
        let ctx = QueryContext::new(&g, &f, &p);
        let s = format!("{ctx:?}");
        assert!(s.contains("vertices: 2"));
        let pl = PathLength;
        let _ctx2 = QueryContext::with_similarity(&g, &f, &p, &pl);
    }
}
