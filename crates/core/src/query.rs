//! Query specification: start point + category sequence.

use skysr_category::{CategoryId, Requirement};
use skysr_graph::VertexId;

/// One position of the category sequence.
#[derive(Clone, Debug, PartialEq)]
pub enum PositionSpec {
    /// A plain category (Definition 3.1) — the fast path used by all
    /// experiments.
    Category(CategoryId),
    /// A complex requirement (§6): conjunction / disjunction / negation.
    Requirement(Requirement),
}

impl From<CategoryId> for PositionSpec {
    fn from(c: CategoryId) -> PositionSpec {
        PositionSpec::Category(c)
    }
}

impl From<Requirement> for PositionSpec {
    fn from(r: Requirement) -> PositionSpec {
        PositionSpec::Requirement(r)
    }
}

/// The canonical, hashable form of one sequence position.
///
/// Produced by [`SkySrQuery::canonical_positions`]; unlike [`PositionSpec`]
/// it implements `Eq + Hash`, and structurally different spellings of the
/// same requirement collapse to one value (see
/// [`Requirement::canonical`]) — a requirement that reduces to a single
/// plain category becomes [`CanonicalPosition::Category`], so it shares
/// cache entries with the equivalent plain-category query.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum CanonicalPosition {
    /// A plain category (or a requirement that reduces to one).
    Category(CategoryId),
    /// A complex requirement in canonical form.
    Requirement(Requirement),
}

/// A SkySR query: "starting from `start`, visit something matching each
/// position of `sequence`, in order" (Definition 4.2).
#[derive(Clone, Debug, PartialEq)]
pub struct SkySrQuery {
    /// Start vertex `v_q`.
    pub start: VertexId,
    /// Category sequence `S_q`.
    pub sequence: Vec<PositionSpec>,
}

impl SkySrQuery {
    /// Query over plain categories.
    pub fn new(start: VertexId, categories: impl IntoIterator<Item = CategoryId>) -> SkySrQuery {
        SkySrQuery { start, sequence: categories.into_iter().map(PositionSpec::Category).collect() }
    }

    /// Query over arbitrary position specs.
    pub fn with_positions(
        start: VertexId,
        positions: impl IntoIterator<Item = PositionSpec>,
    ) -> SkySrQuery {
        SkySrQuery { start, sequence: positions.into_iter().collect() }
    }

    /// |S_q|.
    pub fn len(&self) -> usize {
        self.sequence.len()
    }

    /// Whether the sequence is empty (an invalid query).
    pub fn is_empty(&self) -> bool {
        self.sequence.is_empty()
    }

    /// The canonical form of every position, in order — the structural
    /// identity result caches key by. Queries that differ only in
    /// requirement spelling (branch order, duplicate branches, redundant
    /// nesting, exclusion order) map to the same canonical sequence.
    pub fn canonical_positions(&self) -> Vec<CanonicalPosition> {
        self.sequence
            .iter()
            .map(|spec| match spec {
                PositionSpec::Category(c) => CanonicalPosition::Category(*c),
                PositionSpec::Requirement(r) => match r.canonical() {
                    Requirement::Category(c) => CanonicalPosition::Category(c),
                    canon => CanonicalPosition::Requirement(canon),
                },
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors() {
        let q = SkySrQuery::new(VertexId(3), [CategoryId(1), CategoryId(2)]);
        assert_eq!(q.len(), 2);
        assert_eq!(q.start, VertexId(3));
        assert!(!q.is_empty());
        assert!(matches!(q.sequence[0], PositionSpec::Category(CategoryId(1))));
    }

    #[test]
    fn from_impls() {
        let p: PositionSpec = CategoryId(4).into();
        assert_eq!(p, PositionSpec::Category(CategoryId(4)));
        let r: PositionSpec = Requirement::category(CategoryId(4)).into();
        assert!(matches!(r, PositionSpec::Requirement(_)));
    }

    #[test]
    fn canonical_positions_unify_spellings() {
        let plain = SkySrQuery::new(VertexId(0), [CategoryId(1), CategoryId(2)]);
        // The same query with position 0 spelled as a singleton disjunction
        // and position 1 as a plain requirement.
        let spelled = SkySrQuery::with_positions(
            VertexId(0),
            [
                PositionSpec::Requirement(Requirement::any_of([CategoryId(1)])),
                PositionSpec::Requirement(Requirement::category(CategoryId(2))),
            ],
        );
        assert_ne!(plain, spelled);
        assert_eq!(plain.canonical_positions(), spelled.canonical_positions());
        assert_eq!(
            plain.canonical_positions(),
            vec![
                CanonicalPosition::Category(CategoryId(1)),
                CanonicalPosition::Category(CategoryId(2))
            ]
        );
        // Branch order of a genuine disjunction is canonicalized away.
        let ab = SkySrQuery::with_positions(
            VertexId(0),
            [PositionSpec::Requirement(Requirement::any_of([CategoryId(1), CategoryId(2)]))],
        );
        let ba = SkySrQuery::with_positions(
            VertexId(0),
            [PositionSpec::Requirement(Requirement::any_of([CategoryId(2), CategoryId(1)]))],
        );
        assert_eq!(ab.canonical_positions(), ba.canonical_positions());
        assert!(matches!(
            ab.canonical_positions()[0],
            CanonicalPosition::Requirement(Requirement::AnyOf(_))
        ));
    }
}
