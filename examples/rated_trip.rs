//! The §9 multi-attribute extension: skyline routes over **three**
//! criteria — length, semantic similarity, and PoI ratings.
//!
//! Replays the Figure 1 running example with ratings attached: the hobby
//! shop that the plain 2-D skyline discards (dominated on length and
//! semantics) re-enters the answer because it is the best-rated shop in
//! town.
//!
//! ```text
//! cargo run --release --example rated_trip
//! ```

use skysr::core::bssr::Bssr;
use skysr::core::paper_example::PaperExample;
use skysr::prelude::*;

fn main() {
    let ex = PaperExample::new();
    let ctx = ex.context();

    // Plain 2-D skyline (the paper's SkySR query).
    let two_d = Bssr::new(&ctx).run(&ex.query()).expect("valid query");
    println!("2-D skyline (length × semantics): {} routes", two_d.routes.len());
    for r in &two_d.routes {
        println!("  {:>6.1}  s={:.2}  {:?}", r.length.get(), r.semantic, r.pois);
    }

    // Attach ratings: the hobby shop p7 is outstanding, the gift shop p8
    // mediocre.
    let mut ratings = RatingTable::new(ex.graph.num_vertices(), 0.5);
    ratings.set(ex.p(7), 1.0);
    ratings.set(ex.p(8), 0.1);
    ratings.set(ex.p(13), 0.9);

    let three_d = RatedQuery::new(ex.query()).run(&ctx, &ratings).expect("valid query");
    println!("\n3-D skyline (length × semantics × rating): {} routes", three_d.routes.len());
    for r in &three_d.routes {
        println!(
            "  {:>6.1}  s={:.2}  rating-deficit={:.2}  {:?}",
            r.length.get(),
            r.semantic,
            r.rating,
            r.pois
        );
    }

    // The premium hobby-shop route survives only in the 3-D skyline.
    let premium = three_d.routes.iter().any(|r| r.pois.contains(&ex.p(7)));
    assert!(premium, "the top-rated stop should appear in the 3-D skyline");
    assert!(three_d.routes.len() >= two_d.routes.len());
}
