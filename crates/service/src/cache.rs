//! Cross-query LRU result cache.
//!
//! Keys are *canonicalized* queries: start vertex, plain category
//! sequence, and the engine configuration the result was computed under.
//! Queries using complex [`Requirement`](skysr_category::Requirement)
//! positions are not canonicalized (no cheap structural key exists for
//! them yet) and simply bypass the cache.
//!
//! Values are `Arc<[SkylineRoute]>`, so a hit shares the stored skyline
//! with every waiter instead of cloning route vectors under the lock.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use skysr_category::CategoryId;
use skysr_core::bssr::BssrConfig;
use skysr_core::query::PositionSpec;
use skysr_core::query::SkySrQuery;
use skysr_core::route::SkylineRoute;
use skysr_graph::VertexId;

/// Canonical cache key for a SkySR query under one engine configuration.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct QueryKey {
    start: VertexId,
    categories: Box<[CategoryId]>,
    config: BssrConfig,
}

impl QueryKey {
    /// Canonicalizes `query`; `None` if any position is a complex
    /// requirement (such queries bypass the cache).
    pub fn canonicalize(query: &SkySrQuery, config: BssrConfig) -> Option<QueryKey> {
        let mut categories = Vec::with_capacity(query.sequence.len());
        for spec in &query.sequence {
            match spec {
                PositionSpec::Category(c) => categories.push(*c),
                PositionSpec::Requirement(_) => return None,
            }
        }
        Some(QueryKey { start: query.start, categories: categories.into_boxed_slice(), config })
    }
}

/// Plain LRU map: `HashMap` for lookup plus an index-linked list for
/// recency order. Both operations are O(1); no allocation after the node
/// slab reaches capacity.
struct Lru<K, V> {
    map: HashMap<K, usize>,
    nodes: Vec<Node<K, V>>,
    /// Most recently used, or `NIL`.
    head: usize,
    /// Least recently used, or `NIL`.
    tail: usize,
    free: Vec<usize>,
    capacity: usize,
}

struct Node<K, V> {
    key: K,
    value: V,
    prev: usize,
    next: usize,
}

const NIL: usize = usize::MAX;

impl<K: Clone + Eq + std::hash::Hash, V: Clone> Lru<K, V> {
    fn new(capacity: usize) -> Lru<K, V> {
        assert!(capacity > 0, "LRU capacity must be positive");
        Lru {
            map: HashMap::with_capacity(capacity),
            nodes: Vec::with_capacity(capacity),
            head: NIL,
            tail: NIL,
            free: Vec::new(),
            capacity,
        }
    }

    fn unlink(&mut self, i: usize) {
        let (prev, next) = (self.nodes[i].prev, self.nodes[i].next);
        match prev {
            NIL => self.head = next,
            p => self.nodes[p].next = next,
        }
        match next {
            NIL => self.tail = prev,
            n => self.nodes[n].prev = prev,
        }
    }

    fn push_front(&mut self, i: usize) {
        self.nodes[i].prev = NIL;
        self.nodes[i].next = self.head;
        match self.head {
            NIL => self.tail = i,
            h => self.nodes[h].prev = i,
        }
        self.head = i;
    }

    /// Looks `key` up, marking it most recently used on a hit.
    fn get(&mut self, key: &K) -> Option<V> {
        let &i = self.map.get(key)?;
        if self.head != i {
            self.unlink(i);
            self.push_front(i);
        }
        Some(self.nodes[i].value.clone())
    }

    /// Inserts (or refreshes) `key`; returns `true` when an older entry
    /// was evicted to make room.
    fn insert(&mut self, key: K, value: V) -> bool {
        if let Some(&i) = self.map.get(&key) {
            self.nodes[i].value = value;
            if self.head != i {
                self.unlink(i);
                self.push_front(i);
            }
            return false;
        }
        let mut evicted = false;
        if self.map.len() == self.capacity {
            let lru = self.tail;
            self.unlink(lru);
            self.map.remove(&self.nodes[lru].key);
            self.free.push(lru);
            evicted = true;
        }
        let i = match self.free.pop() {
            Some(i) => {
                self.nodes[i] = Node { key: key.clone(), value, prev: NIL, next: NIL };
                i
            }
            None => {
                self.nodes.push(Node { key: key.clone(), value, prev: NIL, next: NIL });
                self.nodes.len() - 1
            }
        };
        self.map.insert(key, i);
        self.push_front(i);
        evicted
    }

    fn len(&self) -> usize {
        self.map.len()
    }
}

/// Counter values of a [`ResultCache`] at one instant.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheCounters {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that missed (including uncacheable queries).
    pub misses: u64,
    /// Entries displaced by capacity pressure.
    pub evictions: u64,
    /// Entries currently stored.
    pub len: u64,
}

impl CacheCounters {
    /// Hits over total lookups, `0.0` when nothing was looked up.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// Thread-safe LRU cache from canonicalized queries to shared skylines.
pub struct ResultCache {
    inner: Mutex<Lru<QueryKey, Arc<[SkylineRoute]>>>,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

impl ResultCache {
    /// Cache holding at most `capacity` entries.
    pub fn new(capacity: usize) -> ResultCache {
        ResultCache {
            inner: Mutex::new(Lru::new(capacity)),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    /// Looks a canonicalized query up, counting the hit or miss. Pass
    /// `None` (an uncacheable query) to count a miss without locking.
    pub fn get(&self, key: Option<&QueryKey>) -> Option<Arc<[SkylineRoute]>> {
        let result = key.and_then(|k| self.inner.lock().expect("cache poisoned").get(k));
        match result {
            Some(_) => self.hits.fetch_add(1, Ordering::Relaxed),
            None => self.misses.fetch_add(1, Ordering::Relaxed),
        };
        result
    }

    /// Stores a computed skyline.
    pub fn insert(&self, key: QueryKey, routes: Arc<[SkylineRoute]>) {
        if self.inner.lock().expect("cache poisoned").insert(key, routes) {
            self.evictions.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Current counter values.
    pub fn counters(&self) -> CacheCounters {
        CacheCounters {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            len: self.inner.lock().expect("cache poisoned").len() as u64,
        }
    }
}

impl std::fmt::Debug for ResultCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ResultCache").field("counters", &self.counters()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use skysr_category::Requirement;
    use skysr_core::bssr::QueuePolicy;
    use skysr_graph::Cost;

    fn routes(n: u32) -> Arc<[SkylineRoute]> {
        vec![SkylineRoute { pois: vec![VertexId(n)], length: Cost::new(n as f64), semantic: 0.0 }]
            .into()
    }

    fn key(start: u32) -> QueryKey {
        let q = SkySrQuery::new(VertexId(start), [CategoryId(0), CategoryId(1)]);
        QueryKey::canonicalize(&q, BssrConfig::default()).unwrap()
    }

    #[test]
    fn requirement_queries_are_uncacheable() {
        let q = SkySrQuery::with_positions(
            VertexId(0),
            [PositionSpec::Requirement(Requirement::category(CategoryId(0)))],
        );
        assert!(QueryKey::canonicalize(&q, BssrConfig::default()).is_none());
    }

    #[test]
    fn config_distinguishes_keys() {
        let q = SkySrQuery::new(VertexId(0), [CategoryId(0)]);
        let a = QueryKey::canonicalize(&q, BssrConfig::default()).unwrap();
        let b = QueryKey::canonicalize(
            &q,
            BssrConfig { queue_policy: QueuePolicy::DistanceBased, ..BssrConfig::default() },
        )
        .unwrap();
        assert_ne!(a, b);
    }

    #[test]
    fn hit_miss_and_counters() {
        let cache = ResultCache::new(4);
        assert!(cache.get(Some(&key(1))).is_none());
        cache.insert(key(1), routes(1));
        let hit = cache.get(Some(&key(1))).expect("hit");
        assert_eq!(hit[0].pois, vec![VertexId(1)]);
        assert!(cache.get(None).is_none(), "uncacheable counts as a miss");
        let c = cache.counters();
        assert_eq!((c.hits, c.misses, c.evictions, c.len), (1, 2, 0, 1));
        assert!((c.hit_rate() - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let cache = ResultCache::new(2);
        cache.insert(key(1), routes(1));
        cache.insert(key(2), routes(2));
        // Touch 1, making 2 the eviction victim.
        assert!(cache.get(Some(&key(1))).is_some());
        cache.insert(key(3), routes(3));
        assert!(cache.get(Some(&key(2))).is_none(), "2 was evicted");
        assert!(cache.get(Some(&key(1))).is_some());
        assert!(cache.get(Some(&key(3))).is_some());
        assert_eq!(cache.counters().evictions, 1);
    }

    #[test]
    fn reinsert_refreshes_without_eviction() {
        let cache = ResultCache::new(2);
        cache.insert(key(1), routes(1));
        cache.insert(key(2), routes(2));
        cache.insert(key(1), routes(10));
        assert_eq!(cache.counters().evictions, 0);
        assert_eq!(cache.get(Some(&key(1))).unwrap()[0].length, Cost::new(10.0));
        // 2 is now the LRU entry.
        cache.insert(key(3), routes(3));
        assert!(cache.get(Some(&key(2))).is_none());
    }

    #[test]
    fn slab_reuse_after_many_evictions() {
        let cache = ResultCache::new(3);
        for i in 0..100 {
            cache.insert(key(i), routes(i));
        }
        let c = cache.counters();
        assert_eq!(c.len, 3);
        assert_eq!(c.evictions, 97);
        for i in 97..100 {
            assert!(cache.get(Some(&key(i))).is_some(), "newest entries survive");
        }
    }
}
