//! Dynamic edge weights: epoch-versioned copy-on-write weight overlays,
//! with bounded history (leased pins + GC) and delta introspection.
//!
//! Live traffic changes edge weights underneath long-running services.
//! Rebuilding (or even copying) a city-scale CSR per update is far too
//! expensive, and mutating weights in place would let a search observe a
//! half-applied update. Instead, a [`WeightEpoch`] manager applies batched
//! [`WeightDelta`]s as sparse, immutable [`WeightOverlay`]s over the shared
//! CSR storage — the same diff-over-base idea the incremental-versioning
//! literature uses for snapshot storage — and each published batch gets a
//! monotonically increasing [`EpochId`]:
//!
//! * **Readers pin leases.** [`WeightEpoch::pin`] returns a
//!   [`RoadNetwork`] view (two `Arc` clones) frozen at the current epoch;
//!   a search that holds it sees one consistent set of weights no matter
//!   how many updates publish concurrently. The view's clone of the
//!   overlay `Arc` doubles as a *counted lease* registered with the
//!   manager: as long as any view of an epoch is alive, that epoch's
//!   overlay is pinned and the garbage collector must not touch it.
//! * **Writers copy-on-write.** [`WeightEpoch::publish`] merges the new
//!   deltas with the previous cumulative overlay into a fresh overlay —
//!   O(cumulative changed arcs + batch), which stays far below O(|E|) as
//!   long as traffic touches a fraction of the network.
//! * **History is garbage-collected.** With a retention ring configured
//!   ([`WeightEpoch::with_retention`] / [`WeightEpoch::set_retention`]),
//!   at most K recent epochs stay pinnable; older overlays whose lease
//!   count has dropped to zero are *compacted* — logically snapshot-merged
//!   into their successor (cumulative overlays already contain every older
//!   entry, so dropping the layer loses nothing) — and
//!   [`WeightEpoch::compact`] additionally folds the newest cumulative
//!   overlay into a fresh base weight array (a true base-CSR merge), so
//!   subsequent publishes start from an empty overlay again. A *held* pin
//!   blocks compaction of exactly its epoch; releasing the view unblocks
//!   it on the next sweep. [`WeightEpoch::gc_stats`] reports retained /
//!   compacted counts for service metrics.
//! * **Deltas are introspectable.** [`WeightEpoch::delta_between`] diffs
//!   the cumulative overlays of two retained epochs into a [`DeltaSet`]
//!   (touched arc slots with both weights, endpoint vertices, and
//!   weight-ratio floors) — the raw material incremental skyline *repair*
//!   classifies cached results against instead of recomputing them.
//!
//! Overlay entries are keyed by *arc slot* (see [`RoadNetwork::arc`]), so
//! lookups during neighbour iteration are a cursor walk over a sorted
//! sub-slice rather than a hash probe per arc.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use crate::csr::RoadNetwork;
use crate::landmarks::Landmarks;
use crate::VertexId;

/// Identifier of a published weight epoch. Epoch ids are monotonically
/// increasing per [`WeightEpoch`] manager, starting at [`EpochId::BASE`]
/// (the weights the network was built with).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct EpochId(pub u64);

impl EpochId {
    /// The epoch of the base weights (no update applied).
    pub const BASE: EpochId = EpochId(0);

    /// Raw value accessor.
    #[inline]
    pub fn get(self) -> u64 {
        self.0
    }
}

impl std::fmt::Debug for EpochId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "e{}", self.0)
    }
}

impl std::fmt::Display for EpochId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// One edge reweighting: the edge `from — to` takes the absolute weight
/// `weight` from the publishing epoch on. On undirected networks both
/// stored arc directions are updated; parallel edges are all updated.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct WeightDelta {
    /// Tail vertex.
    pub from: VertexId,
    /// Head vertex.
    pub to: VertexId,
    /// New absolute weight (non-negative, non-NaN).
    pub weight: f64,
}

impl WeightDelta {
    /// Creates a delta, validating the weight.
    ///
    /// # Panics
    /// If `weight` is negative or NaN.
    pub fn new(from: VertexId, to: VertexId, weight: f64) -> WeightDelta {
        assert!(weight >= 0.0, "edge weight must be non-negative, got {weight}");
        WeightDelta { from, to, weight }
    }
}

/// A sparse, immutable arc-reweighting layer: the cumulative set of arcs
/// whose weight differs from the epoch's base weight array, as of one
/// epoch.
#[derive(Debug)]
pub struct WeightOverlay {
    epoch: EpochId,
    /// Affected arc slots, sorted ascending, unique.
    arcs: Box<[u32]>,
    /// `weights[i]` is the weight of arc `arcs[i]`.
    weights: Box<[f64]>,
    /// A lower bound on `min_a w_epoch(a) / w_origin(a)` over *all* arcs
    /// `a`, where `w_origin` is the weight under the manager's original
    /// (epoch-0) view. Maintained as a running minimum across publishes, so
    /// it survives base-CSR rebasing. Lower-bound oracles computed on the
    /// origin weights (e.g. landmarks) stay admissible at this epoch when
    /// scaled by this factor: `d_epoch(u, v) >= min_ratio * d_origin(u, v)`.
    min_ratio: f64,
}

impl WeightOverlay {
    fn empty(epoch: EpochId) -> WeightOverlay {
        WeightOverlay { epoch, arcs: Box::new([]), weights: Box::new([]), min_ratio: 1.0 }
    }

    /// The epoch this overlay was published as.
    #[inline]
    pub fn epoch(&self) -> EpochId {
        self.epoch
    }

    /// Number of reweighted arcs.
    pub fn len(&self) -> usize {
        self.arcs.len()
    }

    /// Whether no arc is reweighted.
    pub fn is_empty(&self) -> bool {
        self.arcs.is_empty()
    }

    /// The weight-ratio floor versus the manager's origin weights (see the
    /// field docs): `d_epoch >= min_ratio * d_origin` for every distance.
    #[inline]
    pub fn min_ratio(&self) -> f64 {
        self.min_ratio
    }

    /// The overlay entries covering arc slots `lo..hi`, as parallel
    /// (slots, weights) sub-slices.
    #[inline]
    pub(crate) fn range(&self, lo: u32, hi: u32) -> (&[u32], &[f64]) {
        let a = self.arcs.partition_point(|&s| s < lo);
        let b = a + self.arcs[a..].partition_point(|&s| s < hi);
        (&self.arcs[a..b], &self.weights[a..b])
    }

    /// The overlay weight of arc `slot`, if reweighted.
    #[inline]
    pub(crate) fn weight_of(&self, slot: u32) -> Option<f64> {
        self.arcs.binary_search(&slot).ok().map(|i| self.weights[i])
    }

    /// All (arc slot, weight) entries.
    pub(crate) fn entries(&self) -> impl Iterator<Item = (u32, f64)> + '_ {
        self.arcs.iter().copied().zip(self.weights.iter().copied())
    }

    /// Approximate heap footprint in bytes.
    pub fn heap_bytes(&self) -> usize {
        self.arcs.len() * std::mem::size_of::<u32>()
            + self.weights.len() * std::mem::size_of::<f64>()
    }
}

/// One arc whose weight differs between the two epochs of a [`DeltaSet`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct WeightTouch {
    /// Arc slot in the packed adjacency array.
    pub slot: u32,
    /// Tail vertex of the arc (a path can only cross the arc after paying
    /// the full distance to this vertex — the anchor of repair's
    /// reachability lower bounds).
    pub tail: VertexId,
    /// Head vertex of the arc.
    pub head: VertexId,
    /// The arc's weight at the older epoch.
    pub from_weight: f64,
    /// The arc's weight at the newer epoch.
    pub to_weight: f64,
}

impl WeightTouch {
    /// Whether the arc got cheaper (the dangerous direction for cached
    /// skylines: a shortcut can surface routes a search never saw).
    #[inline]
    pub fn decreased(&self) -> bool {
        self.to_weight < self.from_weight
    }
}

/// The exact set of arcs whose weight differs between two epochs of one
/// [`WeightEpoch`] manager, as computed by [`WeightEpoch::delta_between`].
///
/// Because cumulative overlays store *absolute* weights, the set is a true
/// diff: an arc that was reweighted and later restored to its old value
/// does **not** appear.
#[derive(Clone, Debug)]
pub struct DeltaSet {
    from: EpochId,
    to: EpochId,
    from_min_ratio: f64,
    to_min_ratio: f64,
    touches: Vec<WeightTouch>,
}

impl DeltaSet {
    /// The older epoch of the pair.
    pub fn from_epoch(&self) -> EpochId {
        self.from
    }

    /// The newer epoch of the pair.
    pub fn to_epoch(&self) -> EpochId {
        self.to
    }

    /// Weight-ratio floor of the older epoch versus the manager's origin
    /// weights (see [`WeightOverlay::min_ratio`]).
    pub fn from_min_ratio(&self) -> f64 {
        self.from_min_ratio
    }

    /// Weight-ratio floor of the newer epoch.
    pub fn to_min_ratio(&self) -> f64 {
        self.to_min_ratio
    }

    /// The touched arcs, sorted by arc slot.
    pub fn touches(&self) -> &[WeightTouch] {
        &self.touches
    }

    /// Number of touched arcs.
    pub fn len(&self) -> usize {
        self.touches.len()
    }

    /// Whether the two epochs are weight-identical.
    pub fn is_empty(&self) -> bool {
        self.touches.is_empty()
    }

    /// Every vertex incident to a touched arc (tails and heads), sorted
    /// and deduplicated.
    pub fn touched_nodes(&self) -> Vec<VertexId> {
        let mut nodes: Vec<VertexId> = self.touches.iter().flat_map(|t| [t.tail, t.head]).collect();
        nodes.sort_unstable();
        nodes.dedup();
        nodes
    }
}

/// A *touched-ball index* over one [`DeltaSet`]: per-landmark distance
/// intervals covering every touched (and every *decreased*) arc tail,
/// built once per epoch pair and shared across all the stale cache keys
/// repaired against that pair.
///
/// Repair's tier-1 classification asks, per cached skyline, "is every
/// touched tail provably farther from this query's start than the
/// skyline's longest route?" Answering it tail-by-tail costs
/// O(touches × landmarks) landmark probes *per key*. This index
/// precomputes, for each landmark `ℓ`, the interval
/// `[min_t d(ℓ, t), max_t d(ℓ, t)]` over the touched tails `t`; then for
/// any start `s`,
///
/// ```text
/// min_t max_ℓ |d(ℓ, s) − d(ℓ, t)|  ≥  max_ℓ dist(d(ℓ, s), [lo_ℓ, hi_ℓ])
/// ```
///
/// (each tail's triangle bound is at least its interval distance), so one
/// O(landmarks) evaluation lower-bounds the distance from `s` to the
/// *nearest* touched tail — the whole ball of touched arcs at once. When
/// the ball floor clears the skyline radius, tier 1 passes without
/// touching the per-tail data; otherwise the caller falls back to the
/// exact per-tail probes (same verdict as before, the index only ever
/// short-circuits the common far-away case).
///
/// A landmark that cannot see some touched tail (infinite distance)
/// contributes no constraint and its interval degenerates to
/// `(-∞, +∞)` (floor 0 from that landmark).
#[derive(Clone, Debug)]
pub struct DeltaIndex {
    delta: DeltaSet,
    /// Per-landmark `(lo, hi)` over all touched tails; empty when built
    /// without landmarks.
    touched: Box<[(f64, f64)]>,
    /// Per-landmark `(lo, hi)` over the tails of *decreased* arcs only
    /// (the dangerous direction for cached skylines).
    decreased: Box<[(f64, f64)]>,
    /// Whether any touched arc decreased — fixed at build time so the
    /// per-key fast path never re-scans the touch list.
    has_decreases: bool,
}

/// Folds `d` into the running interval `iv`; an infinite distance poisons
/// the interval (no constraint from this landmark).
fn fold_interval(iv: &mut (f64, f64), d: f64) {
    if d.is_finite() {
        iv.0 = iv.0.min(d);
        iv.1 = iv.1.max(d);
    } else {
        *iv = (f64::NEG_INFINITY, f64::INFINITY);
    }
}

/// Distance from point `x` to interval `(lo, hi)` (0 inside).
fn interval_dist(x: f64, (lo, hi): (f64, f64)) -> f64 {
    if x < lo {
        lo - x
    } else if x > hi {
        x - hi
    } else {
        0.0
    }
}

impl DeltaIndex {
    /// Builds the index over `delta`. Without `landmarks` the index
    /// carries no intervals and both floors are 0 (callers fall through to
    /// their exact paths, exactly as before).
    pub fn build(delta: DeltaSet, landmarks: Option<&Landmarks>) -> DeltaIndex {
        let n = landmarks.map_or(0, Landmarks::num_landmarks);
        let mut touched = vec![(f64::INFINITY, f64::NEG_INFINITY); n].into_boxed_slice();
        let mut decreased = vec![(f64::INFINITY, f64::NEG_INFINITY); n].into_boxed_slice();
        if let Some(lm) = landmarks {
            for t in delta.touches() {
                for l in 0..n {
                    let d = lm.distance(l, t.tail);
                    fold_interval(&mut touched[l], d);
                    if t.decreased() {
                        fold_interval(&mut decreased[l], d);
                    }
                }
            }
        }
        let has_decreases = delta.touches().iter().any(WeightTouch::decreased);
        DeltaIndex { delta, touched, decreased, has_decreases }
    }

    /// The underlying exact delta.
    pub fn delta(&self) -> &DeltaSet {
        &self.delta
    }

    /// Lower bound on `min over touched tails t of d_origin(start, t)`, at
    /// the *origin* (epoch-0) weight scale. 0 when the delta is empty, the
    /// index was built without landmarks, or `landmarks` disagrees with
    /// the build-time oracle. `landmarks` must be the same oracle the
    /// index was built with.
    pub fn touched_floor(&self, landmarks: &Landmarks, start: VertexId) -> f64 {
        Self::ball_floor(&self.touched, landmarks, start)
    }

    /// Like [`Self::touched_floor`], but over the tails of *decreased*
    /// arcs only. `f64::INFINITY` when nothing decreased.
    pub fn decreased_floor(&self, landmarks: &Landmarks, start: VertexId) -> f64 {
        if !self.has_decreases {
            return f64::INFINITY;
        }
        Self::ball_floor(&self.decreased, landmarks, start)
    }

    fn ball_floor(intervals: &[(f64, f64)], landmarks: &Landmarks, start: VertexId) -> f64 {
        if intervals.len() != landmarks.num_landmarks() {
            return 0.0;
        }
        let mut best = 0.0f64;
        for (l, &iv) in intervals.iter().enumerate() {
            if iv.0 > iv.1 {
                // Interval never fed (empty tail set): no constraint.
                continue;
            }
            let ds = landmarks.distance(l, start);
            if !ds.is_finite() {
                continue;
            }
            best = best.max(interval_dist(ds, iv));
        }
        best
    }
}

/// Snapshot of a [`WeightEpoch`] manager's history/GC accounting, surfaced
/// through service metrics so a soak run can prove the overlay history
/// stays bounded.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct EpochGcStats {
    /// Epochs currently pinnable (overlays resident in the ring).
    pub retained: usize,
    /// High-water mark of `retained`, measured after each collection
    /// sweep. Bounded by `retention + (number of concurrently leased older
    /// epochs)` — every held pin keeps exactly its own epoch alive.
    pub retained_max: usize,
    /// Configured ring size K (`0` = unlimited, the default: every epoch
    /// stays pinnable forever, as PR 3 behaved).
    pub retention: usize,
    /// Overlays compacted away (snapshot-merged into their successor and
    /// dropped from the ring).
    pub compacted: u64,
    /// Base-CSR rebases: times the newest cumulative overlay was folded
    /// into a fresh base weight array by [`WeightEpoch::compact`].
    pub rebases: u64,
    /// Entries in the newest cumulative overlay (arcs currently deviating
    /// from the newest base weight array).
    pub overlay_len: usize,
}

/// One retained epoch: the base view its overlay patches (the origin
/// storage, or a rebased snapshot) plus the cumulative overlay itself.
struct EpochEntry {
    base: RoadNetwork,
    overlay: Arc<WeightOverlay>,
    /// The overlay this entry carried *before* a base-CSR rebase replaced
    /// it. Views pinned before the rebase hold clones of this `Arc`, so it
    /// must keep participating in the lease count — otherwise a sweep
    /// could compact an epoch whose pre-rebase views are still alive.
    prior: Option<Arc<WeightOverlay>>,
}

impl EpochEntry {
    /// Whether any reader still holds a view of this epoch (a clone of
    /// either overlay generation).
    fn leased(&self) -> bool {
        Arc::strong_count(&self.overlay) > 1
            || self.prior.as_ref().is_some_and(|p| Arc::strong_count(p) > 1)
    }
}

struct EpochStore {
    /// Epoch id → entry, for every still-pinnable epoch.
    entries: BTreeMap<u64, EpochEntry>,
    /// Ring size K; `0` = unlimited.
    retention: usize,
    compacted: u64,
    rebases: u64,
    retained_max: usize,
}

impl EpochStore {
    /// Drops unleased overlays older than the retention horizon. The
    /// newest K epochs always stay; an older epoch survives only while
    /// some reader still holds a view of it (its overlay `Arc` has
    /// outstanding clones — the lease). Returns the number compacted.
    fn collect(&mut self) -> usize {
        if self.retention == 0 {
            self.retained_max = self.retained_max.max(self.entries.len());
            return 0;
        }
        let newest = *self.entries.keys().next_back().expect("epoch 0 always exists");
        let horizon = newest.saturating_sub(self.retention as u64 - 1);
        let dead: Vec<u64> =
            self.entries.range(..horizon).filter(|(_, e)| !e.leased()).map(|(&k, _)| k).collect();
        for k in &dead {
            self.entries.remove(k);
        }
        self.compacted += dead.len() as u64;
        self.retained_max = self.retained_max.max(self.entries.len());
        dead.len()
    }
}

/// Epoch-versioned manager of dynamic edge weights over one road network.
///
/// The network passed to [`WeightEpoch::new`] (with whatever weights its
/// view carries) becomes epoch 0. Each [`publish`](WeightEpoch::publish)
/// folds a batch of deltas into a new cumulative overlay and makes it the
/// current epoch; readers that [`pin`](WeightEpoch::pin)ned an earlier
/// epoch keep their snapshot untouched. Epoch ids are meaningful only
/// within one manager.
///
/// By default every published epoch stays pinnable forever (the memory
/// cost grows with epochs × changed arcs). Configuring a retention ring
/// ([`with_retention`](WeightEpoch::with_retention)) bounds the history:
/// see the module docs for the lease/GC semantics.
pub struct WeightEpoch {
    /// The original epoch-0 view. Immutable for the manager's lifetime —
    /// it anchors arc-slot resolution, the `min_ratio` bookkeeping and any
    /// lower-bound oracle (landmarks) built over it, even after rebases.
    base: RoadNetwork,
    /// The most recently published epoch id, readable without the lock —
    /// serving workers poll this once per request to decide whether to
    /// re-pin, and must not serialize against an in-progress publish
    /// merge.
    current: AtomicU64,
    store: Mutex<EpochStore>,
}

impl std::fmt::Debug for WeightEpoch {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WeightEpoch")
            .field("current", &self.current_epoch())
            .field("gc", &self.gc_stats())
            .finish()
    }
}

impl WeightEpoch {
    /// Takes `base` (as currently weighted) as epoch 0, with unlimited
    /// history retention.
    pub fn new(base: RoadNetwork) -> WeightEpoch {
        WeightEpoch::with_retention(base, 0)
    }

    /// Takes `base` as epoch 0 and keeps at most `retention` epochs
    /// pinnable (`0` = unlimited). See the module docs for the GC
    /// semantics.
    pub fn with_retention(base: RoadNetwork, retention: usize) -> WeightEpoch {
        let zero = match base.overlay() {
            // A re-managed pinned view keeps its weights but restarts the
            // epoch counter: flatten its overlay into this manager's epoch 0.
            // Ratios are measured against *this* manager's origin (the view
            // as handed over), so the inherited overlay starts at 1.
            Some(o) => Arc::new(WeightOverlay {
                epoch: EpochId::BASE,
                arcs: o.arcs.clone(),
                weights: o.weights.clone(),
                min_ratio: 1.0,
            }),
            None => Arc::new(WeightOverlay::empty(EpochId::BASE)),
        };
        let mut entries = BTreeMap::new();
        entries.insert(0u64, EpochEntry { base: base.clone(), overlay: zero, prior: None });
        WeightEpoch {
            base,
            current: AtomicU64::new(0),
            store: Mutex::new(EpochStore {
                entries,
                retention,
                compacted: 0,
                rebases: 0,
                retained_max: 1,
            }),
        }
    }

    /// Reconfigures the retention ring (`0` = unlimited) and immediately
    /// runs a collection sweep under the new bound.
    pub fn set_retention(&self, retention: usize) {
        let mut store = self.store.lock().expect("epoch manager poisoned");
        store.retention = retention;
        store.collect();
    }

    /// The most recently published epoch. Lock-free: safe to poll per
    /// request even while a publish is merging overlays.
    pub fn current_epoch(&self) -> EpochId {
        EpochId(self.current.load(Ordering::Acquire))
    }

    /// A read view pinned to the current epoch. O(1): two `Arc` clones.
    /// The view is a counted lease — while it (or any clone) is alive,
    /// its epoch cannot be compacted away.
    pub fn pin(&self) -> RoadNetwork {
        let store = self.store.lock().expect("epoch manager poisoned");
        let (_, entry) = store.entries.iter().next_back().expect("epoch 0 always exists");
        Self::view(entry)
    }

    /// A read view pinned to `epoch`, if it was published by this manager
    /// and is still retained (not compacted away). Like [`pin`], the view
    /// is a lease blocking compaction of its epoch.
    ///
    /// [`pin`]: WeightEpoch::pin
    pub fn pin_at(&self, epoch: EpochId) -> Option<RoadNetwork> {
        let store = self.store.lock().expect("epoch manager poisoned");
        store.entries.get(&epoch.0).map(Self::view)
    }

    fn view(entry: &EpochEntry) -> RoadNetwork {
        // Even an empty epoch-0 overlay is cloned into the view: the clone
        // *is* the lease, and a pin that held no overlay would not block
        // compaction of its epoch. (Iterating an empty overlay costs two
        // partition-points on empty slices per neighbour scan — noise.)
        entry.base.with_overlay(Arc::clone(&entry.overlay))
    }

    /// The original (epoch-0) view. Stable across rebases: lower-bound
    /// oracles (landmarks) built over it stay valid for every epoch when
    /// scaled by that epoch's [`WeightOverlay::min_ratio`].
    pub fn base(&self) -> &RoadNetwork {
        &self.base
    }

    /// Applies one batch of weight deltas as the next epoch and returns its
    /// id. Copy-on-write: the previous overlay is merged with the resolved
    /// deltas into a fresh overlay (last write wins within the batch);
    /// published epochs are never mutated. Afterwards a collection sweep
    /// compacts unleased epochs beyond the retention ring.
    ///
    /// An empty batch still publishes a (content-identical) new epoch —
    /// callers control epoch granularity.
    ///
    /// # Panics
    /// If a delta names an edge that does not exist in the network, or
    /// carries a negative/NaN weight.
    pub fn publish(&self, deltas: &[WeightDelta]) -> EpochId {
        // Resolve edges to arc slots outside the lock; both directions of
        // an undirected edge change together so a pinned view stays
        // symmetric.
        let mut patch: Vec<(u32, f64)> = Vec::with_capacity(deltas.len() * 2);
        for d in deltas {
            assert!(
                !d.weight.is_nan() && d.weight >= 0.0,
                "edge weight must be non-negative, got {}",
                d.weight
            );
            let mut slots = self.base.arcs_between(d.from, d.to);
            if !self.base.is_directed() && d.from != d.to {
                slots.extend(self.base.arcs_between(d.to, d.from));
            }
            assert!(
                !slots.is_empty(),
                "weight delta names a nonexistent edge {:?} -> {:?}",
                d.from,
                d.to
            );
            patch.extend(slots.into_iter().map(|s| (s, d.weight)));
        }
        // Within one batch the last delta for an edge wins.
        patch.sort_by_key(|&(s, _)| s);
        patch.dedup_by(|later, earlier| {
            // `dedup_by` keeps the *first* of a run; runs are in input order
            // after the stable sort, so copy the later value forward.
            if later.0 == earlier.0 {
                earlier.1 = later.1;
                true
            } else {
                false
            }
        });
        // Ratio floor of this batch versus the origin weights. Zero-weight
        // origin arcs impose no constraint (w >= r * 0 holds for any r).
        let patch_ratio = patch
            .iter()
            .map(|&(s, w)| {
                let origin = self.base.arc_weight(s);
                if origin > 0.0 {
                    w / origin
                } else {
                    1.0
                }
            })
            .fold(1.0f64, f64::min);

        let mut store = self.store.lock().expect("epoch manager poisoned");
        let (&prev_id, prev) = store.entries.iter().next_back().expect("epoch 0 always exists");
        let epoch = EpochId(self.current.load(Ordering::Relaxed) + 1);
        debug_assert!(epoch.0 > prev_id);
        // Sorted two-pointer merge of the previous cumulative overlay with
        // the patch (patch wins on collision).
        let prev_overlay = &prev.overlay;
        let mut arcs = Vec::with_capacity(prev_overlay.arcs.len() + patch.len());
        let mut weights = Vec::with_capacity(prev_overlay.arcs.len() + patch.len());
        let (mut i, mut j) = (0usize, 0usize);
        while i < prev_overlay.arcs.len() || j < patch.len() {
            let take_patch = match (prev_overlay.arcs.get(i), patch.get(j)) {
                (Some(&a), Some(&(b, _))) => {
                    if a == b {
                        i += 1; // superseded by the patch
                        true
                    } else {
                        b < a
                    }
                }
                (None, Some(_)) => true,
                (Some(_), None) => false,
                (None, None) => unreachable!(),
            };
            if take_patch {
                let (s, w) = patch[j];
                arcs.push(s);
                weights.push(w);
                j += 1;
            } else {
                arcs.push(prev_overlay.arcs[i]);
                weights.push(prev_overlay.weights[i]);
                i += 1;
            }
        }
        let overlay = Arc::new(WeightOverlay {
            epoch,
            arcs: arcs.into_boxed_slice(),
            weights: weights.into_boxed_slice(),
            min_ratio: prev_overlay.min_ratio.min(patch_ratio),
        });
        let base = prev.base.clone();
        store.entries.insert(epoch.0, EpochEntry { base, overlay, prior: None });
        store.collect();
        // Advertise the epoch only after its overlay is resident (still
        // inside the lock), so a reader that observes the new id can
        // always pin it.
        self.current.store(epoch.0, Ordering::Release);
        epoch
    }

    /// Runs a full compaction: a collection sweep (drop unleased overlays
    /// beyond the retention ring), then a *base-CSR rebase* — the newest
    /// cumulative overlay is folded into a fresh base weight array and
    /// replaced by an empty overlay, so subsequent publishes merge against
    /// an empty layer again. Returns the number of overlays dropped.
    ///
    /// Already-pinned views are untouched (they own their storage and
    /// overlay `Arc`s); only *new* pins observe the rebased storage.
    /// Cross-rebase [`delta_between`](WeightEpoch::delta_between) pairs
    /// are unavailable (the two overlays patch different bases) and return
    /// `None` — callers fall back to recomputation.
    pub fn compact(&self) -> usize {
        let mut store = self.store.lock().expect("epoch manager poisoned");
        let dropped = store.collect();
        let (&newest, entry) = store.entries.iter().next_back().expect("epoch 0 always exists");
        if !entry.overlay.is_empty() {
            let folded = entry.base.with_weights_folded(&entry.overlay);
            let overlay = Arc::new(WeightOverlay {
                epoch: entry.overlay.epoch,
                arcs: Box::new([]),
                weights: Box::new([]),
                // Entries folded into the base still deviate from the
                // origin; the ratio floor must survive the fold.
                min_ratio: entry.overlay.min_ratio,
            });
            // The displaced overlay stays as a lease anchor: views pinned
            // before the rebase hold clones of it.
            let prior = Some(Arc::clone(&entry.overlay));
            store.entries.insert(newest, EpochEntry { base: folded, overlay, prior });
            store.rebases += 1;
        }
        dropped
    }

    /// The exact set of arcs whose weight differs between `from` and `to`,
    /// or `None` when either epoch is no longer retained or the pair
    /// straddles a base-CSR rebase (the overlays patch different storages
    /// and cannot be diffed directly).
    ///
    /// O(|overlay(from)| + |overlay(to)|): a sorted two-pointer diff of
    /// the two cumulative overlays — absolute weights make intermediate
    /// epochs irrelevant, and an arc changed and changed *back* correctly
    /// does not appear.
    pub fn delta_between(&self, from: EpochId, to: EpochId) -> Option<DeltaSet> {
        if from > to {
            return None;
        }
        // Take only cheap clones under the manager lock — repair calls
        // this per stale cache hit, and the O(overlay) diff below must not
        // serialize the serving workers against pins and publishes. The
        // transient overlay clones also lease both epochs, so the diff
        // cannot race a compaction.
        let (base, fo, to_ov) = {
            let store = self.store.lock().expect("epoch manager poisoned");
            let fe = store.entries.get(&from.0)?;
            let te = store.entries.get(&to.0)?;
            if !fe.base.same_storage(&te.base) {
                return None;
            }
            (fe.base.clone(), Arc::clone(&fe.overlay), Arc::clone(&te.overlay))
        };
        let mut touches = Vec::new();
        let (mut i, mut j) = (0usize, 0usize);
        let base = &base;
        let mut push = |slot: u32, from_weight: f64, to_weight: f64| {
            if from_weight != to_weight {
                let (tail, head, _) = base.arc(slot as usize);
                touches.push(WeightTouch { slot, tail, head, from_weight, to_weight });
            }
        };
        while i < fo.arcs.len() || j < to_ov.arcs.len() {
            match (fo.arcs.get(i).copied(), to_ov.arcs.get(j).copied()) {
                (Some(a), Some(b)) if a == b => {
                    push(a, fo.weights[i], to_ov.weights[j]);
                    i += 1;
                    j += 1;
                }
                (Some(a), Some(b)) if a < b => {
                    push(a, fo.weights[i], base.arc_weight(a));
                    i += 1;
                }
                (Some(_), Some(b)) => {
                    push(b, base.arc_weight(b), to_ov.weights[j]);
                    j += 1;
                }
                (Some(a), None) => {
                    push(a, fo.weights[i], base.arc_weight(a));
                    i += 1;
                }
                (None, Some(b)) => {
                    push(b, base.arc_weight(b), to_ov.weights[j]);
                    j += 1;
                }
                (None, None) => unreachable!(),
            }
        }
        Some(DeltaSet {
            from,
            to,
            from_min_ratio: fo.min_ratio,
            to_min_ratio: to_ov.min_ratio,
            touches,
        })
    }

    /// History/GC accounting snapshot.
    pub fn gc_stats(&self) -> EpochGcStats {
        let store = self.store.lock().expect("epoch manager poisoned");
        let (_, newest) = store.entries.iter().next_back().expect("epoch 0 always exists");
        EpochGcStats {
            retained: store.entries.len(),
            retained_max: store.retained_max,
            retention: store.retention,
            compacted: store.compacted,
            rebases: store.rebases,
            overlay_len: newest.overlay.len(),
        }
    }

    /// Number of reweighted arcs in the current cumulative overlay.
    pub fn overlay_len(&self) -> usize {
        self.gc_stats().overlay_len
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;
    use crate::weight::Cost;

    /// 0 —1— 1 —2— 2, plus 0 —5— 2.
    fn triangle() -> RoadNetwork {
        let mut b = GraphBuilder::new();
        let v: Vec<_> = (0..3).map(|_| b.add_vertex()).collect();
        b.add_edge(v[0], v[1], 1.0);
        b.add_edge(v[1], v[2], 2.0);
        b.add_edge(v[0], v[2], 5.0);
        b.build()
    }

    fn weight_between(g: &RoadNetwork, a: u32, b: u32) -> f64 {
        g.neighbors(VertexId(a)).find(|&(t, _)| t == VertexId(b)).map(|(_, w)| w.get()).unwrap()
    }

    #[test]
    fn epochs_are_monotonic_and_pins_are_stable() {
        let epochs = WeightEpoch::new(triangle());
        assert_eq!(epochs.current_epoch(), EpochId::BASE);
        let e0 = epochs.pin();
        let e1 = epochs.publish(&[WeightDelta::new(VertexId(0), VertexId(1), 9.0)]);
        assert_eq!(e1, EpochId(1));
        let e2 = epochs.publish(&[WeightDelta::new(VertexId(1), VertexId(2), 4.0)]);
        assert_eq!(e2, EpochId(2));
        assert_eq!(epochs.current_epoch(), EpochId(2));
        // The epoch-0 pin still sees base weights.
        assert_eq!(weight_between(&e0, 0, 1), 1.0);
        assert_eq!(e0.epoch(), EpochId::BASE);
        // Cumulative: epoch 2 sees both updates.
        let p2 = epochs.pin();
        assert_eq!(p2.epoch(), EpochId(2));
        assert_eq!(weight_between(&p2, 0, 1), 9.0);
        assert_eq!(weight_between(&p2, 1, 2), 4.0);
        assert_eq!(weight_between(&p2, 0, 2), 5.0);
        // Historical pin: epoch 1 has only the first update.
        let p1 = epochs.pin_at(EpochId(1)).unwrap();
        assert_eq!(weight_between(&p1, 0, 1), 9.0);
        assert_eq!(weight_between(&p1, 1, 2), 2.0);
        assert!(epochs.pin_at(EpochId(99)).is_none());
    }

    #[test]
    fn undirected_updates_apply_to_both_arcs() {
        let epochs = WeightEpoch::new(triangle());
        epochs.publish(&[WeightDelta::new(VertexId(2), VertexId(0), 7.5)]);
        let p = epochs.pin();
        assert_eq!(weight_between(&p, 0, 2), 7.5);
        assert_eq!(weight_between(&p, 2, 0), 7.5);
    }

    #[test]
    fn directed_updates_touch_one_direction() {
        let mut b = GraphBuilder::directed();
        let v0 = b.add_vertex();
        let v1 = b.add_vertex();
        b.add_edge(v0, v1, 1.0);
        b.add_edge(v1, v0, 1.0);
        let epochs = WeightEpoch::new(b.build());
        epochs.publish(&[WeightDelta::new(v0, v1, 3.0)]);
        let p = epochs.pin();
        assert_eq!(weight_between(&p, 0, 1), 3.0);
        assert_eq!(weight_between(&p, 1, 0), 1.0);
    }

    #[test]
    fn last_delta_wins_within_a_batch() {
        let epochs = WeightEpoch::new(triangle());
        epochs.publish(&[
            WeightDelta::new(VertexId(0), VertexId(1), 2.0),
            WeightDelta::new(VertexId(1), VertexId(0), 3.0),
        ]);
        let p = epochs.pin();
        assert_eq!(weight_between(&p, 0, 1), 3.0);
        assert_eq!(weight_between(&p, 1, 0), 3.0);
    }

    #[test]
    fn empty_batch_still_advances_the_epoch() {
        let epochs = WeightEpoch::new(triangle());
        let e = epochs.publish(&[]);
        assert_eq!(e, EpochId(1));
        assert_eq!(epochs.pin().epoch(), EpochId(1));
        assert_eq!(weight_between(&epochs.pin(), 0, 1), 1.0);
    }

    #[test]
    fn managing_a_pinned_view_preserves_weights_and_restarts_epochs() {
        let first = WeightEpoch::new(triangle());
        first.publish(&[WeightDelta::new(VertexId(0), VertexId(1), 6.0)]);
        let handoff = first.pin();
        let second = WeightEpoch::new(handoff);
        assert_eq!(second.current_epoch(), EpochId::BASE);
        let p = second.pin();
        assert_eq!(p.epoch(), EpochId::BASE);
        assert_eq!(weight_between(&p, 0, 1), 6.0, "inherited weights survive the handoff");
        second.publish(&[WeightDelta::new(VertexId(1), VertexId(2), 8.0)]);
        let q = second.pin();
        assert_eq!(weight_between(&q, 0, 1), 6.0);
        assert_eq!(weight_between(&q, 1, 2), 8.0);
    }

    #[test]
    #[should_panic(expected = "nonexistent edge")]
    fn unknown_edge_rejected() {
        let epochs = WeightEpoch::new(triangle());
        epochs.publish(&[WeightDelta::new(VertexId(0), VertexId(0), 1.0)]);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_weight_rejected() {
        WeightDelta::new(VertexId(0), VertexId(1), -1.0);
    }

    #[test]
    fn overlay_len_tracks_cumulative_changes() {
        let epochs = WeightEpoch::new(triangle());
        assert_eq!(epochs.overlay_len(), 0);
        epochs.publish(&[WeightDelta::new(VertexId(0), VertexId(1), 2.0)]);
        assert_eq!(epochs.overlay_len(), 2, "both arc directions");
        // Re-updating the same edge does not grow the overlay.
        epochs.publish(&[WeightDelta::new(VertexId(0), VertexId(1), 3.0)]);
        assert_eq!(epochs.overlay_len(), 2);
        epochs.publish(&[WeightDelta::new(VertexId(1), VertexId(2), 3.0)]);
        assert_eq!(epochs.overlay_len(), 4);
    }

    #[test]
    fn concurrent_readers_on_pinned_epochs_are_unaffected_by_publishes() {
        use crate::dijkstra::{shortest_distance, DijkstraWorkspace};
        let epochs = std::sync::Arc::new(WeightEpoch::new(triangle()));
        let pinned = epochs.pin(); // epoch 0: d(0, 2) = 3 via 0-1-2
        let readers: Vec<_> = (0..4)
            .map(|_| {
                let g = pinned.clone();
                std::thread::spawn(move || {
                    let mut ws = DijkstraWorkspace::new(g.num_vertices());
                    (0..200)
                        .map(|_| shortest_distance(&g, &mut ws, VertexId(0), VertexId(2)).unwrap())
                        .all(|d| d == Cost::new(3.0))
                })
            })
            .collect();
        let writer = {
            let epochs = std::sync::Arc::clone(&epochs);
            std::thread::spawn(move || {
                for i in 0..200u32 {
                    epochs.publish(&[WeightDelta::new(
                        VertexId(0),
                        VertexId(1),
                        1.0 + f64::from(i),
                    )]);
                }
            })
        };
        for r in readers {
            assert!(r.join().unwrap(), "a pinned reader must never observe an update");
        }
        writer.join().unwrap();
        assert_eq!(epochs.current_epoch(), EpochId(200));
        // After the writer, a fresh pin sees the last update.
        let mut ws = DijkstraWorkspace::new(3);
        let d = shortest_distance(&epochs.pin(), &mut ws, VertexId(0), VertexId(2)).unwrap();
        assert_eq!(d, Cost::new(5.0), "0-1 now costs 200, so the direct 0-2 edge wins");
    }

    #[test]
    fn delta_between_diffs_cumulative_overlays() {
        let epochs = WeightEpoch::new(triangle());
        let e1 = epochs.publish(&[WeightDelta::new(VertexId(0), VertexId(1), 9.0)]);
        let e2 = epochs.publish(&[WeightDelta::new(VertexId(1), VertexId(2), 4.0)]);
        // e1 -> e2: only the 1-2 edge differs (both directions).
        let d = epochs.delta_between(e1, e2).unwrap();
        assert_eq!(d.len(), 2);
        assert!(d.touches().iter().all(|t| t.from_weight == 2.0 && t.to_weight == 4.0));
        assert!(!d.touches()[0].decreased());
        let nodes = d.touched_nodes();
        assert_eq!(nodes, vec![VertexId(1), VertexId(2)]);
        // base -> e2: both edges differ (4 arcs).
        let d = epochs.delta_between(EpochId::BASE, e2).unwrap();
        assert_eq!(d.len(), 4);
        // Same epoch: empty.
        assert!(epochs.delta_between(e2, e2).unwrap().is_empty());
        // Backwards or unknown: None.
        assert!(epochs.delta_between(e2, e1).is_none());
        assert!(epochs.delta_between(e1, EpochId(77)).is_none());
    }

    #[test]
    fn delta_between_ignores_changed_and_restored_arcs() {
        let epochs = WeightEpoch::new(triangle());
        let e1 = epochs.publish(&[WeightDelta::new(VertexId(0), VertexId(1), 9.0)]);
        let e2 = epochs.publish(&[WeightDelta::new(VertexId(0), VertexId(1), 1.0)]); // restored
        let d = epochs.delta_between(EpochId::BASE, e2).unwrap();
        assert!(d.is_empty(), "a restored weight is not a difference: {d:?}");
        let d = epochs.delta_between(e1, e2).unwrap();
        assert_eq!(d.len(), 2);
        assert!(d.touches()[0].decreased());
    }

    #[test]
    fn min_ratio_tracks_the_worst_weight_drop() {
        let epochs = WeightEpoch::new(triangle());
        let e1 = epochs.publish(&[WeightDelta::new(VertexId(0), VertexId(1), 0.5)]); // ratio 0.5
        let e2 = epochs.publish(&[WeightDelta::new(VertexId(1), VertexId(2), 8.0)]); // ratio 4.0
        let d = epochs.delta_between(e1, e2).unwrap();
        assert_eq!(d.from_min_ratio(), 0.5);
        assert_eq!(d.to_min_ratio(), 0.5, "the running minimum never recovers");
        // Restoring the weight does not raise the floor (it is a lower
        // bound, not an exact minimum).
        let e3 = epochs.publish(&[WeightDelta::new(VertexId(0), VertexId(1), 1.0)]);
        assert_eq!(epochs.delta_between(e2, e3).unwrap().to_min_ratio(), 0.5);
    }

    #[test]
    fn retention_ring_bounds_history_and_counts_compactions() {
        let epochs = WeightEpoch::with_retention(triangle(), 3);
        for i in 0..10u32 {
            epochs.publish(&[WeightDelta::new(VertexId(0), VertexId(1), 1.0 + f64::from(i))]);
        }
        let gc = epochs.gc_stats();
        assert_eq!(gc.retained, 3, "ring keeps exactly K epochs: {gc:?}");
        assert_eq!(gc.retention, 3);
        assert_eq!(gc.compacted, 8, "epochs 0..=7 were compacted");
        assert!(gc.retained_max <= 3, "nothing was pinned, so the ring never grew: {gc:?}");
        // Old epochs are gone; recent ones still pin.
        assert!(epochs.pin_at(EpochId(0)).is_none());
        assert!(epochs.pin_at(EpochId(7)).is_none());
        for e in 8..=10 {
            assert!(epochs.pin_at(EpochId(e)).is_some(), "epoch {e} must be retained");
        }
    }

    #[test]
    fn a_held_pin_blocks_compaction_and_release_unblocks_it() {
        let epochs = WeightEpoch::with_retention(triangle(), 2);
        epochs.publish(&[WeightDelta::new(VertexId(0), VertexId(1), 2.0)]);
        let held = epochs.pin_at(EpochId(1)).expect("fresh epoch pins");
        for i in 0..6u32 {
            epochs.publish(&[WeightDelta::new(VertexId(1), VertexId(2), 3.0 + f64::from(i))]);
        }
        // Epoch 1 is leased: it must survive every sweep while `held` lives.
        assert!(epochs.pin_at(EpochId(1)).is_some(), "a held lease blocks compaction");
        assert_eq!(weight_between(&held, 0, 1), 2.0, "the held view is untouched");
        let gc = epochs.gc_stats();
        assert_eq!(gc.retained, 3, "ring of 2 plus the one leased epoch");
        assert!(gc.retained_max <= 2 + 1);
        drop(held);
        // The lease is gone; the next sweep compacts epoch 1.
        epochs.compact();
        assert!(epochs.pin_at(EpochId(1)).is_none(), "released epochs are collectable");
        assert_eq!(epochs.gc_stats().retained, 2);
    }

    #[test]
    fn compact_rebases_the_newest_overlay_into_the_base_csr() {
        let epochs = WeightEpoch::with_retention(triangle(), 2);
        epochs.publish(&[WeightDelta::new(VertexId(0), VertexId(1), 9.0)]);
        let e2 = epochs.publish(&[WeightDelta::new(VertexId(1), VertexId(2), 4.0)]);
        let before = epochs.pin();
        assert_eq!(epochs.gc_stats().overlay_len, 4);
        epochs.compact();
        let gc = epochs.gc_stats();
        assert_eq!(gc.rebases, 1);
        assert_eq!(gc.overlay_len, 0, "the cumulative overlay folded into the base");
        // Weights are unchanged through the rebase, for old and new pins.
        let after = epochs.pin();
        assert_eq!(after.epoch(), e2);
        for (a, b) in [(0, 1), (1, 2), (0, 2)] {
            assert_eq!(weight_between(&before, a, b), weight_between(&after, a, b));
        }
        // Publishing after the rebase starts from an empty overlay.
        let e3 = epochs.publish(&[WeightDelta::new(VertexId(0), VertexId(2), 6.0)]);
        assert_eq!(epochs.gc_stats().overlay_len, 2);
        let p = epochs.pin();
        assert_eq!(weight_between(&p, 0, 1), 9.0, "folded weights persist");
        assert_eq!(weight_between(&p, 0, 2), 6.0);
        // Cross-rebase delta pairs are unavailable; same-side pairs work.
        assert!(epochs.delta_between(EpochId(1), e3).is_none());
        assert!(epochs.delta_between(e2, e3).is_some());
    }

    #[test]
    fn even_epoch_zero_pins_are_leases() {
        // Regression: the epoch-0 view of a pristine base must still hold
        // its (empty) overlay Arc — a lease-less pin would not block
        // compaction of its epoch.
        let epochs = WeightEpoch::with_retention(triangle(), 2);
        let held = epochs.pin(); // epoch 0, empty overlay
        for i in 0..5u32 {
            epochs.publish(&[WeightDelta::new(VertexId(0), VertexId(1), 2.0 + f64::from(i))]);
        }
        assert!(epochs.pin_at(EpochId::BASE).is_some(), "a held epoch-0 lease blocks compaction");
        assert_eq!(weight_between(&held, 0, 1), 1.0);
        drop(held);
        epochs.compact();
        assert!(epochs.pin_at(EpochId::BASE).is_none(), "released epoch 0 is collectable");
    }

    /// A 30-vertex line: 0 —1— 1 —1— 2 … so distances are exact hop
    /// counts and "far away" is unambiguous.
    fn line(n: u32) -> RoadNetwork {
        let mut b = GraphBuilder::new();
        let v: Vec<_> = (0..n).map(|_| b.add_vertex()).collect();
        for w in v.windows(2) {
            b.add_edge(w[0], w[1], 1.0);
        }
        b.build()
    }

    #[test]
    fn delta_index_floor_is_admissible_and_tight_on_a_line() {
        let g = line(30);
        let lm = Landmarks::build(&g, 4, VertexId(0));
        let epochs = WeightEpoch::new(g);
        // Touch two far arcs (24-25 up, 27-28 down) — the touched ball
        // starts 24 hops out; the decreased ball 27 hops out.
        let e = epochs.publish(&[
            WeightDelta::new(VertexId(24), VertexId(25), 3.0),
            WeightDelta::new(VertexId(27), VertexId(28), 0.5),
        ]);
        let delta = epochs.delta_between(EpochId::BASE, e).unwrap();
        let exact_min: f64 = delta
            .touches()
            .iter()
            .map(|t| lm.lower_bound(VertexId(0), t.tail).get())
            .fold(f64::INFINITY, f64::min);
        let idx = DeltaIndex::build(delta, Some(&lm));
        let floor = idx.touched_floor(&lm, VertexId(0));
        // Admissible: never above the per-tail minimum bound…
        assert!(floor <= exact_min + 1e-9, "ball floor {floor} > per-tail min {exact_min}");
        // …and on a line with a landmark at an endpoint, exact.
        assert!(floor > 20.0, "the touched ball starts 24 hops from vertex 0: {floor}");
        let dec = idx.decreased_floor(&lm, VertexId(0));
        assert!(dec >= floor, "the decreased ball is a subset of the touched ball");
        assert!(dec > 23.0, "the decrease is 27 hops out: {dec}");
        // A start inside the ball has floor 0.
        assert_eq!(idx.touched_floor(&lm, VertexId(25)), 0.0);
        assert_eq!(idx.delta().len(), 4, "both directions of both edges");
    }

    #[test]
    fn delta_index_without_landmarks_or_decreases_degenerates_safely() {
        let g = line(10);
        let lm = Landmarks::build(&g, 2, VertexId(0));
        let epochs = WeightEpoch::new(g);
        let e = epochs.publish(&[WeightDelta::new(VertexId(7), VertexId(8), 9.0)]); // increase only
        let delta = epochs.delta_between(EpochId::BASE, e).unwrap();
        let blind = DeltaIndex::build(delta.clone(), None);
        assert_eq!(blind.touched_floor(&lm, VertexId(0)), 0.0, "landmark mismatch floors at 0");
        let idx = DeltaIndex::build(delta, Some(&lm));
        assert_eq!(
            idx.decreased_floor(&lm, VertexId(0)),
            f64::INFINITY,
            "no decreased arc at all: the decreased ball is empty"
        );
        // Empty delta: floor 0 everywhere (nothing to clear).
        let e2 = epochs.publish(&[]);
        let empty = DeltaIndex::build(epochs.delta_between(e, e2).unwrap(), Some(&lm));
        assert_eq!(empty.touched_floor(&lm, VertexId(0)), 0.0);
        assert!(empty.delta().is_empty());
    }

    #[test]
    fn unlimited_retention_keeps_every_epoch() {
        let epochs = WeightEpoch::new(triangle());
        for i in 0..20u32 {
            epochs.publish(&[WeightDelta::new(VertexId(0), VertexId(1), 1.0 + f64::from(i))]);
        }
        let gc = epochs.gc_stats();
        assert_eq!(gc.retained, 21);
        assert_eq!(gc.compacted, 0);
        assert!(epochs.pin_at(EpochId(0)).is_some());
        // Tightening retention later sweeps immediately.
        epochs.set_retention(4);
        assert_eq!(epochs.gc_stats().retained, 4);
        assert!(epochs.pin_at(EpochId(0)).is_none());
    }
}
