//! Per-request trace spans and the sampled, bounded buffer that retains
//! them.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Duration;

use skysr_core::stats::EngineProfile;
use skysr_graph::EpochId;

use crate::telemetry::{Rung, TelemetryConfig};

/// One rung-ladder probe and what came of it, e.g. `"exact:miss"`,
/// `"coalesce:lead"`, `"seed:prefix"`. The full vocabulary is documented
/// in the README's Observability section.
pub type Attempt = &'static str;

/// The complete story of one served request: where its time went
/// (queue → plan → engine), which rungs were probed and which one
/// answered, and — when an engine ran — how much raw graph work it did.
///
/// Exactly one span exists per successful response (the trace-completeness
/// invariant; failures produce no span), and the span's `rung` always
/// equals the response's `Served` classification — `replay --trace-out`
/// re-checks both on every run.
#[derive(Clone, Debug)]
pub struct TraceSpan {
    /// Service-assigned id, shared with the matching `QueryResponse`.
    pub request_id: u64,
    /// The weight epoch the request was pinned to.
    pub epoch: EpochId,
    /// The rung that produced the answer (matches `Served`).
    pub rung: Rung,
    /// The rung-ladder probes in execution order with their outcomes.
    pub attempts: Vec<Attempt>,
    /// Submission → dequeue (time spent waiting in the bounded queue).
    pub queue_wait: Duration,
    /// Plan construction: cache probes, seed-step resolution.
    pub plan: Duration,
    /// Engine execution (search or repair); zero when no engine ran
    /// (cache hits, coalesced followers).
    pub engine: Duration,
    /// Submission → completion (equals `queue_wait` + service time).
    pub total: Duration,
    /// Submission-queue depth observed when this request was dequeued.
    pub queue_depth: usize,
    /// The delta index's `(from, to)` epoch pair, for repair rungs.
    pub delta_index: Option<(EpochId, EpochId)>,
    /// The repair tier reached (`"untouched"` / `"rescored"` /
    /// `"researched"`), for repair rungs.
    pub repair_tier: Option<&'static str>,
    /// Engine-work counters for this request (all zero when no engine
    /// ran).
    pub profile: EngineProfile,
    /// Skyline routes in the answer.
    pub skyline: usize,
}

impl TraceSpan {
    /// One JSON object, no trailing newline — the `--trace-out` JSON-lines
    /// format.
    pub fn to_json_line(&self) -> String {
        let mut s = String::with_capacity(256);
        s.push('{');
        push_kv(&mut s, "request_id", &self.request_id.to_string());
        push_kv(&mut s, "epoch", &self.epoch.get().to_string());
        s.push_str("\"rung\":\"");
        s.push_str(self.rung.label());
        s.push_str("\",");
        s.push_str("\"attempts\":[");
        for (i, a) in self.attempts.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push('"');
            s.push_str(a);
            s.push('"');
        }
        s.push_str("],");
        push_kv(&mut s, "queue_wait_us", &format_us(self.queue_wait));
        push_kv(&mut s, "plan_us", &format_us(self.plan));
        push_kv(&mut s, "engine_us", &format_us(self.engine));
        push_kv(&mut s, "total_us", &format_us(self.total));
        push_kv(&mut s, "queue_depth", &self.queue_depth.to_string());
        match self.delta_index {
            Some((from, to)) => {
                s.push_str(&format!("\"delta_index\":[{},{}],", from.get(), to.get()));
            }
            None => s.push_str("\"delta_index\":null,"),
        }
        match self.repair_tier {
            Some(t) => s.push_str(&format!("\"repair_tier\":\"{t}\",")),
            None => s.push_str("\"repair_tier\":null,"),
        }
        let p = &self.profile;
        push_kv(&mut s, "settled", &p.settled.to_string());
        push_kv(&mut s, "relaxed", &p.relaxed.to_string());
        push_kv(&mut s, "heap_pushes", &p.heap_pushes.to_string());
        push_kv(&mut s, "routes_enqueued", &p.routes_enqueued.to_string());
        push_kv(&mut s, "pruned_labels", &p.pruned_labels().to_string());
        push_kv(&mut s, "seeds_survived", &p.seeds_survived.to_string());
        push_kv(&mut s, "mdijkstra_runs", &p.mdijkstra_runs.to_string());
        s.push_str(&format!("\"skyline\":{}", self.skyline));
        s.push('}');
        s
    }
}

fn push_kv(s: &mut String, key: &str, raw_value: &str) {
    s.push('"');
    s.push_str(key);
    s.push_str("\":");
    s.push_str(raw_value);
    s.push(',');
}

/// Microseconds with sub-µs precision, as a bare JSON number.
fn format_us(d: Duration) -> String {
    format!("{:.3}", d.as_secs_f64() * 1e6)
}

/// One shard of the trace buffer (see [`TraceBuffer`]).
#[derive(Debug, Default)]
struct Shard {
    /// Ring of sampled spans, oldest first; bounded by the shard's share
    /// of [`TelemetryConfig::capacity`].
    ring: Vec<TraceSpan>,
    /// Next ring slot to overwrite once full.
    head: usize,
    /// Spans offered to this shard so far (drives 1/N sampling).
    offered: u64,
    /// The shard's slowest spans by `total`, ascending; bounded by its
    /// share of [`TelemetryConfig::slowest`].
    slow: Vec<TraceSpan>,
}

/// Bounded, sampled retention of [`TraceSpan`]s.
///
/// Sharded by request id so concurrent workers almost never touch the
/// same mutex; each shard keeps (a) a bounded ring of every `1/N`-th span
/// offered and (b) its slowest few spans regardless of sampling — the
/// tail is the part worth keeping, and uniform sampling would usually
/// drop it. [`TraceBuffer::drain`] merges the shards, de-duplicating
/// spans retained by both rules.
///
/// When tracing is disabled ([`TelemetryConfig::tracing`] = false) every
/// offer returns immediately without taking any lock.
#[derive(Debug)]
pub struct TraceBuffer {
    shards: Vec<Mutex<Shard>>,
    ring_per_shard: usize,
    slow_per_shard: usize,
    sample_every: u64,
    enabled: bool,
    dropped: AtomicU64,
}

impl TraceBuffer {
    /// Buffer for `config`, sharded for `workers` concurrent recorders.
    pub fn new(config: &TelemetryConfig, workers: usize) -> TraceBuffer {
        let shards = workers.clamp(1, 64);
        TraceBuffer {
            ring_per_shard: config.capacity.div_ceil(shards).max(1),
            slow_per_shard: config.slowest.div_ceil(shards).max(1),
            sample_every: config.sample_every.max(1),
            enabled: config.tracing,
            shards: (0..shards).map(|_| Mutex::new(Shard::default())).collect(),
            dropped: AtomicU64::new(0),
        }
    }

    /// Whether spans are being retained at all.
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// Offers one completed span for retention.
    pub fn offer(&self, span: TraceSpan) {
        if !self.enabled {
            return;
        }
        let shard_idx = (span.request_id % self.shards.len() as u64) as usize;
        let mut shard = self.shards[shard_idx].lock().expect("trace shard poisoned");
        shard.offered += 1;
        let sampled = shard.offered % self.sample_every == 1 % self.sample_every;
        // Keep-slowest: admit if the slow list has room or the span beats
        // its current fastest member. Skipped entirely under full
        // retention (`sample_every == 1`) — the ring already keeps every
        // span, so the side list would only clone each one to retain a
        // duplicate that `drain` de-duplicates away.
        let mut keep_slow = false;
        if self.sample_every > 1 {
            let slow_pos = shard.slow.partition_point(|s| s.total <= span.total);
            keep_slow = shard.slow.len() < self.slow_per_shard || slow_pos > 0;
            if keep_slow {
                shard.slow.insert(slow_pos, span.clone());
                if shard.slow.len() > self.slow_per_shard {
                    shard.slow.remove(0);
                }
            }
        }
        if sampled {
            if shard.ring.len() < self.ring_per_shard {
                shard.ring.push(span);
            } else {
                let head = shard.head;
                shard.ring[head] = span;
                shard.head = (head + 1) % self.ring_per_shard;
                self.dropped.fetch_add(1, Ordering::Relaxed);
            }
        } else if !keep_slow {
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Unconditionally retains `span` — the per-request trace opt-in
    /// ([`crate::RequestOptions::trace`]). Bypasses both the enable flag
    /// and sampling; the ring still bounds memory, so a flood of forced
    /// spans overwrites the oldest rather than growing.
    pub fn force(&self, span: TraceSpan) {
        let shard_idx = (span.request_id % self.shards.len() as u64) as usize;
        let mut shard = self.shards[shard_idx].lock().expect("trace shard poisoned");
        shard.offered += 1;
        if shard.ring.len() < self.ring_per_shard {
            shard.ring.push(span);
        } else {
            let head = shard.head;
            shard.ring[head] = span;
            shard.head = (head + 1) % self.ring_per_shard;
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Takes every retained span (ring ∪ slowest, de-duplicated by request
    /// id), sorted by request id. The buffer is left empty but keeps
    /// counting offers for sampling continuity.
    pub fn drain(&self) -> Vec<TraceSpan> {
        let mut spans: Vec<TraceSpan> = Vec::new();
        for shard in &self.shards {
            let mut s = shard.lock().expect("trace shard poisoned");
            spans.append(&mut s.ring);
            s.head = 0;
            spans.append(&mut s.slow);
        }
        spans.sort_by_key(|s| s.request_id);
        spans.dedup_by_key(|s| s.request_id);
        spans
    }

    /// Spans offered across all shards (retained or not).
    pub fn offered(&self) -> u64 {
        self.shards.iter().map(|s| s.lock().expect("trace shard poisoned").offered).sum()
    }

    /// Sampled spans that were overwritten or never retained.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(id: u64, total_us: u64) -> TraceSpan {
        TraceSpan {
            request_id: id,
            epoch: EpochId::BASE,
            rung: Rung::Cold,
            attempts: vec!["exact:miss", "cold"],
            queue_wait: Duration::from_micros(1),
            plan: Duration::from_micros(2),
            engine: Duration::from_micros(total_us.saturating_sub(3)),
            total: Duration::from_micros(total_us),
            queue_depth: 0,
            delta_index: None,
            repair_tier: None,
            profile: EngineProfile::default(),
            skyline: 2,
        }
    }

    #[test]
    fn trace_all_retains_every_span() {
        let buf = TraceBuffer::new(&TelemetryConfig::trace_all(1_000), 4);
        for i in 0..500 {
            buf.offer(span(i, 10 + i));
        }
        let spans = buf.drain();
        assert_eq!(spans.len(), 500);
        assert!(spans.windows(2).all(|w| w[0].request_id < w[1].request_id));
        assert_eq!(buf.offered(), 500);
        assert_eq!(buf.dropped(), 0);
        // Drained: a second drain is empty.
        assert!(buf.drain().is_empty());
    }

    #[test]
    fn sampling_keeps_one_in_n_plus_the_slowest() {
        let cfg = TelemetryConfig { tracing: true, sample_every: 100, capacity: 1_000, slowest: 4 };
        let buf = TraceBuffer::new(&cfg, 1);
        // 1 000 fast spans and one catastrophic outlier that the 1/100
        // sampler would miss at the wrong phase.
        for i in 0..1_000 {
            buf.offer(span(i, 10));
        }
        buf.offer(span(5_000, 1_000_000));
        let spans = buf.drain();
        let sampled = spans.iter().filter(|s| s.total == Duration::from_micros(10)).count();
        assert!(sampled >= 10, "1/100 of 1000 fast spans, got {sampled}");
        assert!(
            spans.iter().any(|s| s.request_id == 5_000),
            "the slowest span must always be retained"
        );
    }

    #[test]
    fn capacity_bounds_retention() {
        let cfg = TelemetryConfig { tracing: true, sample_every: 1, capacity: 64, slowest: 8 };
        let buf = TraceBuffer::new(&cfg, 4);
        for i in 0..10_000 {
            buf.offer(span(i, 10 + (i % 17)));
        }
        let spans = buf.drain();
        assert!(spans.len() <= 64 + 8 + 8, "bounded retention, got {}", spans.len());
        assert!(buf.dropped() > 0);
        assert_eq!(buf.offered(), 10_000);
    }

    #[test]
    fn disabled_buffer_retains_nothing() {
        let buf = TraceBuffer::new(&TelemetryConfig::disabled(), 4);
        assert!(!buf.enabled());
        buf.offer(span(1, 10));
        assert!(buf.drain().is_empty());
        assert_eq!(buf.offered(), 0);
    }

    #[test]
    fn json_lines_are_balanced_and_carry_the_fields() {
        let mut s = span(42, 1_234);
        s.delta_index = Some((EpochId(3), EpochId(5)));
        s.repair_tier = Some("rescored");
        let line = s.to_json_line();
        assert!(line.starts_with('{') && line.ends_with('}'));
        assert_eq!(line.matches('{').count(), 1);
        for needle in [
            "\"request_id\":42",
            "\"rung\":\"cold\"",
            "\"attempts\":[\"exact:miss\",\"cold\"]",
            "\"delta_index\":[3,5]",
            "\"repair_tier\":\"rescored\"",
            "\"total_us\":1234.000",
            "\"skyline\":2",
        ] {
            assert!(line.contains(needle), "{needle} missing from {line}");
        }
    }
}
