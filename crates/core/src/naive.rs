//! Exhaustive reference oracle (test-only by design).
//!
//! Enumerates *every* sequenced route — each tuple of distinct,
//! semantically matching PoIs — scores it with exact pairwise shortest-path
//! distances, and returns the skyline. Exponential in |S_q|, so callers
//! must keep the instance tiny; every search algorithm in this crate is
//! property-tested against this oracle.

use skysr_graph::dijkstra::dijkstra;
use skysr_graph::fxhash::FxHashMap;
use skysr_graph::{Cost, DijkstraWorkspace, VertexId};

use crate::context::QueryContext;
use crate::dominance::skyline_of;
use crate::prepared::PreparedQuery;
use crate::route::SkylineRoute;

/// Upper bound on enumerated candidate tuples before the oracle refuses
/// (protects tests from accidental blow-ups).
pub const DEFAULT_CANDIDATE_LIMIT: u64 = 5_000_000;

/// Computes the exact SkySR answer by brute force.
///
/// # Panics
/// If the number of candidate tuples exceeds `limit` — the oracle is meant
/// for small test instances only.
pub fn naive_skysr(ctx: &QueryContext<'_>, pq: &PreparedQuery, limit: u64) -> Vec<SkylineRoute> {
    skyline_of(naive_all_routes(ctx, pq, limit))
}

/// Enumerates *every* sequenced route with its exact scores (no skyline
/// filtering) — shared by the 2-D oracle and the rated-variant oracle.
///
/// # Panics
/// If the number of candidate tuples exceeds `limit`.
pub fn naive_all_routes(
    ctx: &QueryContext<'_>,
    pq: &PreparedQuery,
    limit: u64,
) -> Vec<SkylineRoute> {
    let k = pq.len();
    if pq.unmatchable_position().is_some() {
        return Vec::new();
    }
    let mut tuples: u64 = 1;
    for p in &pq.positions {
        tuples = tuples.saturating_mul(p.semantic.len() as u64);
    }
    assert!(tuples <= limit, "oracle instance too large: {tuples} candidate tuples");

    // Distance maps from the start and from every PoI that can appear at a
    // non-final position.
    let mut ws = DijkstraWorkspace::new(ctx.graph.num_vertices());
    let mut dist_from: FxHashMap<u32, Vec<f64>> = FxHashMap::default();
    let compute_from = |src: VertexId, ws: &mut DijkstraWorkspace| {
        dijkstra(ctx.graph, ws, src);
        let d: Vec<f64> = (0..ctx.graph.num_vertices())
            .map(|i| ws.distance(VertexId(i as u32)).map_or(f64::INFINITY, |c| c.get()))
            .collect();
        d
    };
    let start_dist = compute_from(pq.start, &mut ws);
    for pos in pq.positions.iter().take(k - 1) {
        for &p in &pos.semantic {
            dist_from.entry(p.0).or_insert_with(|| compute_from(p, &mut ws));
        }
    }

    let mut candidates = Vec::new();
    let mut chosen: Vec<(VertexId, f64)> = Vec::with_capacity(k);
    enumerate(ctx, pq, &start_dist, &dist_from, 0, 0.0, &mut chosen, &mut candidates);
    candidates
}

#[allow(clippy::too_many_arguments)]
fn enumerate(
    ctx: &QueryContext<'_>,
    pq: &PreparedQuery,
    start_dist: &[f64],
    dist_from: &FxHashMap<u32, Vec<f64>>,
    pos: usize,
    length: f64,
    chosen: &mut Vec<(VertexId, f64)>,
    out: &mut Vec<SkylineRoute>,
) {
    if pos == pq.len() {
        let pois: Vec<VertexId> = chosen.iter().map(|&(v, _)| v).collect();
        let sim_product: f64 = chosen.iter().map(|&(_, s)| s).product();
        out.push(SkylineRoute { pois, length: Cost::new(length), semantic: 1.0 - sim_product });
        return;
    }
    let position = &pq.positions[pos];
    for &p in &position.semantic {
        if !position.allow_revisit && chosen.iter().any(|&(v, _)| v == p) {
            continue;
        }
        let hop = if pos == 0 {
            start_dist[p.index()]
        } else {
            dist_from[&chosen[pos - 1].0 .0][p.index()]
        };
        if !hop.is_finite() {
            continue;
        }
        let sim = position.sim_of(ctx, p);
        debug_assert!(sim > 0.0);
        chosen.push((p, sim));
        enumerate(ctx, pq, start_dist, dist_from, pos + 1, length + hop, chosen, out);
        chosen.pop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::paper_example::PaperExample;

    #[test]
    fn oracle_matches_hand_computed_paper_skyline() {
        let ex = PaperExample::new();
        let ctx = ex.context();
        let pq = ex.prepared(&ctx);
        let routes = naive_skysr(&ctx, &pq, DEFAULT_CANDIDATE_LIMIT);
        assert_eq!(routes.len(), 2);
        assert_eq!(routes[0].length, Cost::new(11.0));
        assert_eq!(routes[0].semantic, 0.5);
        assert_eq!(routes[1].length, Cost::new(13.0));
        assert_eq!(routes[1].semantic, 0.0);
    }

    #[test]
    fn oracle_agrees_with_bssr_on_fixture() {
        let ex = PaperExample::new();
        let ctx = ex.context();
        let pq = ex.prepared(&ctx);
        let oracle = naive_skysr(&ctx, &pq, DEFAULT_CANDIDATE_LIMIT);
        let bssr = crate::bssr::Bssr::new(&ctx).run_prepared(&pq);
        assert_eq!(oracle, bssr.routes);
    }

    #[test]
    #[should_panic(expected = "oracle instance too large")]
    fn oracle_refuses_large_instances() {
        let ex = PaperExample::new();
        let ctx = ex.context();
        let pq = ex.prepared(&ctx);
        naive_skysr(&ctx, &pq, 2);
    }
}
