//! Exporters: JSON-lines span dumps and Prometheus-style text exposition.

use crate::metrics::MetricsSnapshot;
use crate::telemetry::histogram::HistogramSnapshot;
use crate::telemetry::trace::TraceSpan;

/// Renders spans as JSON lines (one object per line, trailing newline) —
/// the `--trace-out FILE` format.
pub fn spans_to_json_lines(spans: &[TraceSpan]) -> String {
    let mut out = String::with_capacity(spans.len() * 256);
    for span in spans {
        out.push_str(&span.to_json_line());
        out.push('\n');
    }
    out
}

/// Renders one or more labelled [`MetricsSnapshot`]s as Prometheus text
/// exposition (text format 0.0.4): counters as `skysr_*_total`, gauges
/// bare, histograms as cumulative `_bucket{le=…}` series with `_sum` and
/// `_count`. Each entry's labels (e.g. `workload="duplicate"`) are
/// attached to every series it contributes, so a multi-run bench exports
/// as one self-consistent page.
pub fn prometheus(entries: &[(&[(&str, &str)], &MetricsSnapshot)]) -> String {
    type CounterFn = fn(&MetricsSnapshot) -> u64;
    type HistFn = fn(&MetricsSnapshot) -> &HistogramSnapshot;
    let mut out = String::with_capacity(4096);
    let counters: [(&str, &str, CounterFn); 12] = [
        ("skysr_completed_total", "Queries answered successfully", |m| m.completed),
        ("skysr_failed_total", "Queries rejected by validation", |m| m.failed),
        ("skysr_executed_total", "Queries that ran a BSSR search or repair", |m| m.executed),
        ("skysr_coalesced_total", "Queries answered by joining an in-flight search", |m| {
            m.coalesced
        }),
        ("skysr_stale_served_total", "Responses served from a wrong-epoch entry", |m| {
            m.stale_served
        }),
        ("skysr_repairs_total", "Cached skylines promoted in place by repair", |m| m.repairs),
        ("skysr_repair_fallbacks_total", "Repairs that fell back to a re-search", |m| {
            m.repair_fallbacks
        }),
        ("skysr_cache_hits_total", "Result-cache hits", |m| m.cache.hits),
        ("skysr_cache_misses_total", "Result-cache misses", |m| m.cache.misses),
        ("skysr_cache_evictions_total", "Result-cache evictions", |m| m.cache.evictions),
        ("skysr_cache_invalidations_total", "Entries dropped by epoch invalidation", |m| {
            m.cache.invalidations
        }),
        ("skysr_epochs_retained", "Weight-epoch overlays currently retained", |m| {
            m.epochs.retained as u64
        }),
    ];
    for (name, help, get) in counters {
        let kind = if name.ends_with("_total") { "counter" } else { "gauge" };
        out.push_str(&format!("# HELP {name} {help}\n# TYPE {name} {kind}\n"));
        for (labels, snap) in entries {
            out.push_str(&format!("{name}{} {}\n", label_set(labels, &[]), get(snap)));
        }
    }

    let hists: [(&str, &str, HistFn); 3] = [
        ("skysr_latency_seconds", "End-to-end latency (queueing included)", |m| &m.latency_hist),
        ("skysr_queue_wait_seconds", "Submission-to-dequeue wait", |m| &m.queue_wait_hist),
        ("skysr_engine_seconds", "Engine execution time (search / repair)", |m| &m.engine_hist),
    ];
    for (name, help, get) in hists {
        out.push_str(&format!("# HELP {name} {help}\n# TYPE {name} histogram\n"));
        for (labels, snap) in entries {
            histogram_series(&mut out, name, labels, get(snap));
        }
    }

    out.push_str(
        "# HELP skysr_rung_latency_seconds End-to-end latency by serving rung\n\
         # TYPE skysr_rung_latency_seconds histogram\n",
    );
    for (labels, snap) in entries {
        for rung in &snap.rungs {
            if rung.hist.is_empty() {
                continue;
            }
            histogram_series_with(
                &mut out,
                "skysr_rung_latency_seconds",
                labels,
                &[("rung", rung.rung.label())],
                &rung.hist,
            );
        }
    }
    out
}

/// `{a="x",b="y"}` (or the empty string when no labels), with `extra`
/// appended.
fn label_set(labels: &[(&str, &str)], extra: &[(&str, &str)]) -> String {
    let mut pairs: Vec<String> =
        labels.iter().chain(extra.iter()).map(|(k, v)| format!("{k}=\"{v}\"")).collect();
    if pairs.is_empty() {
        return String::new();
    }
    pairs.sort();
    format!("{{{}}}", pairs.join(","))
}

/// Emits one histogram's `_bucket`/`_sum`/`_count` series.
fn histogram_series(out: &mut String, name: &str, labels: &[(&str, &str)], h: &HistogramSnapshot) {
    histogram_series_with(out, name, labels, &[], h);
}

fn histogram_series_with(
    out: &mut String,
    name: &str,
    labels: &[(&str, &str)],
    extra: &[(&str, &str)],
    h: &HistogramSnapshot,
) {
    for (upper_ns, cum) in h.cumulative() {
        let le = format!("{:.9}", upper_ns as f64 / 1e9);
        let mut with_le: Vec<(&str, &str)> = extra.to_vec();
        with_le.push(("le", le.as_str()));
        out.push_str(&format!("{name}_bucket{} {cum}\n", label_set(labels, &with_le)));
    }
    let mut inf: Vec<(&str, &str)> = extra.to_vec();
    inf.push(("le", "+Inf"));
    out.push_str(&format!("{name}_bucket{} {}\n", label_set(labels, &inf), h.count()));
    out.push_str(&format!(
        "{name}_sum{} {:.9}\n",
        label_set(labels, extra),
        h.sum_ns() as f64 / 1e9
    ));
    out.push_str(&format!("{name}_count{} {}\n", label_set(labels, extra), h.count()));
}
