//! Instrumentation counters shared by all graph searches.
//!
//! The paper's ablation experiments (Tables 7–8, Figures 4–5) are phrased in
//! terms of search-space size: vertices visited, edges relaxed, and the
//! "weight sum" of the traversed region. Every search in this workspace
//! fills a [`SearchStats`] so those tables can be regenerated faithfully.

/// Counters describing one (or an aggregate of) graph searches.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct SearchStats {
    /// Vertices settled (popped with final distance).
    pub settled: u64,
    /// Edges relaxed (neighbour scans).
    pub relaxed: u64,
    /// Heap pushes performed.
    pub pushed: u64,
    /// Sum of weights of relaxed edges — the paper's "weight sum" proxy for
    /// the traversed search space.
    pub weight_sum: f64,
}

impl SearchStats {
    /// Accumulates another stats record into this one.
    pub fn merge(&mut self, other: &SearchStats) {
        self.settled += other.settled;
        self.relaxed += other.relaxed;
        self.pushed += other.pushed;
        self.weight_sum += other.weight_sum;
    }
}

impl std::ops::Add for SearchStats {
    type Output = SearchStats;
    fn add(mut self, rhs: SearchStats) -> SearchStats {
        self.merge(&rhs);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_accumulates() {
        let a = SearchStats { settled: 1, relaxed: 2, pushed: 3, weight_sum: 4.0 };
        let b = SearchStats { settled: 10, relaxed: 20, pushed: 30, weight_sum: 40.0 };
        let c = a + b;
        assert_eq!(c, SearchStats { settled: 11, relaxed: 22, pushed: 33, weight_sum: 44.0 });
    }

    #[test]
    fn default_is_zero() {
        assert_eq!(SearchStats::default().settled, 0);
    }
}
