//! Offline stand-in for the `proptest` crate.
//!
//! Implements the subset of proptest the workspace's property tests use:
//! the [`proptest!`] macro, [`strategy::Strategy`] with `prop_map` / `prop_flat_map`,
//! range and tuple strategies, `prop::collection::vec`, `prop::option::of`,
//! [`prelude::any`] and the `prop_assert*` macros.
//!
//! Semantics differ from upstream in two deliberate ways: there is **no
//! shrinking** (a failing case panics with its generated inputs via the
//! normal assertion message), and case generation is **deterministic per
//! test name** (seeded from a hash of the test's name), so failures
//! reproduce without a persistence file.

pub mod strategy {
    //! Value-generation strategies.

    use crate::test_runner::TestRng;
    use rand::RngExt;
    use std::ops::{Range, RangeInclusive};

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Derived strategy applying `f` to every generated value.
        fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }

        /// Derived strategy generating a value, then sampling from the
        /// strategy `f` builds from it.
        fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
        {
            FlatMap { inner: self, f }
        }
    }

    /// See [`Strategy::prop_map`].
    #[derive(Clone, Debug)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
        type Value = U;
        fn generate(&self, rng: &mut TestRng) -> U {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// See [`Strategy::prop_flat_map`].
    #[derive(Clone, Debug)]
    pub struct FlatMap<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMap<S, F> {
        type Value = T::Value;
        fn generate(&self, rng: &mut TestRng) -> T::Value {
            (self.f)(self.inner.generate(rng)).generate(rng)
        }
    }

    /// Constant strategy: always yields a clone of its value.
    #[derive(Clone, Copy, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.rng.random_range(self.clone())
                }
            }
        )*};
    }

    int_range_strategy!(u32, u64, usize);

    impl Strategy for Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            self.start + rng.rng.random::<f64>() * (self.end - self.start)
        }
    }

    impl Strategy for RangeInclusive<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            // [0, 1) scaled onto the closed interval; the missing supremum
            // is irrelevant for float property tests.
            self.start() + rng.rng.random::<f64>() * (self.end() - self.start())
        }
    }

    macro_rules! tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }

    tuple_strategy!(A);
    tuple_strategy!(A, B);
    tuple_strategy!(A, B, C);
    tuple_strategy!(A, B, C, D);
    tuple_strategy!(A, B, C, D, E);
    tuple_strategy!(A, B, C, D, E, F);
    tuple_strategy!(A, B, C, D, E, F, G);
    tuple_strategy!(A, B, C, D, E, F, G, H);

    /// Types with a canonical strategy, for [`crate::prelude::any`].
    pub trait Arbitrary {
        /// The canonical strategy.
        type Strategy: Strategy<Value = Self>;
        /// Builds the canonical strategy.
        fn arbitrary() -> Self::Strategy;
    }

    /// Canonical `bool` strategy: fair coin.
    #[derive(Clone, Copy, Debug, Default)]
    pub struct AnyBool;

    impl Strategy for AnyBool {
        type Value = bool;
        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.rng.random()
        }
    }

    impl Arbitrary for bool {
        type Strategy = AnyBool;
        fn arbitrary() -> AnyBool {
            AnyBool
        }
    }
}

pub mod test_runner {
    //! Per-test configuration and RNG.

    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// How many random cases each property test runs.
    #[derive(Clone, Debug)]
    pub struct Config {
        /// Number of generated cases (upstream default: 256).
        pub cases: u32,
    }

    impl Config {
        /// Config running `cases` cases.
        pub fn with_cases(cases: u32) -> Config {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Config {
            Config { cases: 256 }
        }
    }

    /// The RNG handed to strategies.
    #[derive(Clone, Debug)]
    pub struct TestRng {
        pub(crate) rng: StdRng,
    }

    impl TestRng {
        /// Deterministic RNG derived from the test's name, so each test
        /// explores a fixed, reproducible case sequence.
        pub fn for_test(name: &str) -> TestRng {
            let mut h = 0xcbf2_9ce4_8422_2325u64; // FNV-1a
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
            TestRng { rng: StdRng::seed_from_u64(h) }
        }
    }
}

pub mod prop {
    //! The `prop::` strategy namespace.

    pub mod collection {
        //! Collection strategies.

        use crate::strategy::Strategy;
        use crate::test_runner::TestRng;
        use rand::RngExt;
        use std::ops::Range;

        /// Accepted size arguments for [`vec()`]: a fixed size or a
        /// half-open range.
        #[derive(Clone, Debug)]
        pub struct SizeRange {
            min: usize,
            max_exclusive: usize,
        }

        impl From<usize> for SizeRange {
            fn from(n: usize) -> SizeRange {
                SizeRange { min: n, max_exclusive: n + 1 }
            }
        }

        impl From<Range<usize>> for SizeRange {
            fn from(r: Range<usize>) -> SizeRange {
                SizeRange { min: r.start, max_exclusive: r.end }
            }
        }

        /// Strategy for `Vec<T>` with element strategy `element` and a
        /// length drawn from `size`.
        pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
            VecStrategy { element, size: size.into() }
        }

        /// See [`vec()`].
        #[derive(Clone, Debug)]
        pub struct VecStrategy<S> {
            element: S,
            size: SizeRange,
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;
            fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
                let n = if self.size.min + 1 >= self.size.max_exclusive {
                    self.size.min
                } else {
                    rng.rng.random_range(self.size.min..self.size.max_exclusive)
                };
                (0..n).map(|_| self.element.generate(rng)).collect()
            }
        }
    }

    pub mod option {
        //! `Option` strategies.

        use crate::strategy::Strategy;
        use crate::test_runner::TestRng;
        use rand::RngExt;

        /// Strategy for `Option<T>`: `Some` three times out of four
        /// (upstream defaults to mostly-`Some` as well).
        pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
            OptionStrategy { inner }
        }

        /// See [`of`].
        #[derive(Clone, Debug)]
        pub struct OptionStrategy<S> {
            inner: S,
        }

        impl<S: Strategy> Strategy for OptionStrategy<S> {
            type Value = Option<S::Value>;
            fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
                if rng.rng.random::<f64>() < 0.75 {
                    Some(self.inner.generate(rng))
                } else {
                    None
                }
            }
        }
    }
}

pub mod prelude {
    //! Single-import surface, mirroring `proptest::prelude`.

    pub use crate::prop;
    pub use crate::strategy::{Arbitrary, Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};

    /// The canonical strategy for `T`.
    pub fn any<T: Arbitrary>() -> T::Strategy {
        T::arbitrary()
    }
}

/// Property-style assertion. Without shrinking these simply delegate to
/// the standard assertion macros.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

/// Property-style equality assertion.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_eq!($a, $b, $($fmt)+) };
}

/// Property-style inequality assertion.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_ne!($a, $b, $($fmt)+) };
}

/// Defines `#[test]` functions whose arguments are drawn from strategies.
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     #[test]
///     fn sum_commutes(a in 0u32..1000, b in 0u32..1000) {
///         prop_assert_eq!(a + b, b + a);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_tests! { $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_tests! { $crate::test_runner::Config::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_tests {
    ($cfg:expr; ) => {};
    ($cfg:expr; #[test] fn $name:ident ( $($args:tt)* ) $body:block $($rest:tt)*) => {
        #[test]
        fn $name() {
            let cfg: $crate::test_runner::Config = $cfg;
            let mut rng = $crate::test_runner::TestRng::for_test(stringify!($name));
            for _case in 0..cfg.cases {
                $crate::__proptest_bind_and_run!((&mut rng), $body, $($args)*);
            }
        }
        $crate::__proptest_tests! { $cfg; $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_bind_and_run {
    ($rng:tt, $body:block, $name:ident in $strat:expr) => {{
        let $name = $crate::strategy::Strategy::generate(&($strat), $rng);
        $body
    }};
    ($rng:tt, $body:block, $name:ident in $strat:expr, $($rest:tt)+) => {{
        let $name = $crate::strategy::Strategy::generate(&($strat), $rng);
        $crate::__proptest_bind_and_run!($rng, $body, $($rest)+)
    }};
    // Tolerate a trailing comma after the final binding.
    ($rng:tt, $body:block, $name:ident in $strat:expr,) => {
        $crate::__proptest_bind_and_run!($rng, $body, $name in $strat)
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_and_tuples(
            n in 3usize..14,
            x in 0.5f64..8.0,
            flag in any::<bool>(),
        ) {
            prop_assert!((3..14).contains(&n));
            prop_assert!((0.5..8.0).contains(&x));
            let _ = flag;
        }

        #[test]
        fn collections_and_maps(v in prop::collection::vec(0u32..10, 1..24)) {
            prop_assert!(!v.is_empty() && v.len() < 24);
            prop_assert!(v.iter().all(|&e| e < 10));
        }

        #[test]
        fn flat_map_scales(pair in (1usize..10).prop_flat_map(|n| {
            (Just(n), prop::collection::vec(0usize..n, n))
        })) {
            let (n, v) = pair;
            prop_assert_eq!(v.len(), n);
            prop_assert!(v.iter().all(|&e| e < n));
        }

        #[test]
        fn options_mix(os in prop::collection::vec(prop::option::of(0usize..5), 64)) {
            // With 64 draws at P(Some) = 0.75 both variants all-but-surely
            // appear.
            prop_assert!(os.iter().any(|o| o.is_some()));
            prop_assert!(os.iter().any(|o| o.is_none()));
        }
    }

    #[test]
    fn deterministic_per_test_name() {
        use crate::strategy::Strategy;
        let mut a = crate::test_runner::TestRng::for_test("t");
        let mut b = crate::test_runner::TestRng::for_test("t");
        let s = 0u64..1_000_000;
        for _ in 0..50 {
            assert_eq!(s.generate(&mut a), s.generate(&mut b));
        }
    }
}
