//! Minimal aligned-text table printer for experiment output.

use std::fmt;

/// A simple left-aligned table.
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// New table with the given column headers.
    pub fn new(header: Vec<&str>) -> Table {
        Table { header: header.into_iter().map(str::to_owned).collect(), rows: Vec::new() }
    }

    /// Appends a row (padded/truncated to the header width).
    pub fn row(&mut self, mut cells: Vec<String>) {
        cells.resize(self.header.len(), String::new());
        self.rows.push(cells);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let write_row = |f: &mut fmt::Formatter<'_>, cells: &[String]| -> fmt::Result {
            write!(f, "|")?;
            for (c, w) in cells.iter().zip(&widths) {
                write!(f, " {c:<w$} |")?;
            }
            writeln!(f)
        };
        write_row(f, &self.header)?;
        write!(f, "|")?;
        for w in &widths {
            write!(f, "{:-<1$}|", "", w + 2)?;
        }
        writeln!(f)?;
        for row in &self.rows {
            write_row(f, row)?;
        }
        Ok(())
    }
}

/// Formats a millisecond quantity with adaptive precision.
pub fn fmt_ms(ms: f64) -> String {
    if ms < 0.1 {
        format!("{:.4}", ms)
    } else if ms < 10.0 {
        format!("{:.2}", ms)
    } else {
        format!("{:.1}", ms)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new(vec!["a", "long-header"]);
        t.row(vec!["x".into(), "1".into()]);
        t.row(vec!["yyyy".into(), "2".into()]);
        let s = t.to_string();
        assert!(s.contains("| a    | long-header |"), "{s}");
        assert!(s.lines().count() == 4);
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn short_rows_padded() {
        let mut t = Table::new(vec!["a", "b"]);
        t.row(vec!["only".into()]);
        assert!(t.to_string().contains("only"));
    }

    #[test]
    fn ms_formatting() {
        assert_eq!(fmt_ms(0.01234), "0.0123");
        assert_eq!(fmt_ms(1.234), "1.23");
        assert_eq!(fmt_ms(123.4), "123.4");
    }
}
