//! Property-based tests for the graph substrate: Dijkstra family
//! invariants on arbitrary random graphs.

use proptest::prelude::*;
use skysr_graph::dijkstra::{dijkstra, shortest_distance, DijkstraWorkspace};
use skysr_graph::multi_source::min_set_distance;
use skysr_graph::path::path_cost;
use skysr_graph::{Cost, GraphBuilder, ResumableDijkstra, RoadNetwork, VertexId};

#[derive(Debug, Clone)]
struct RandomGraph {
    n: usize,
    path_weights: Vec<f64>,
    extra: Vec<(usize, usize, f64)>,
}

fn arb_graph() -> impl Strategy<Value = RandomGraph> {
    (3usize..14).prop_flat_map(|n| {
        (
            Just(n),
            prop::collection::vec(0.1f64..20.0, n - 1),
            prop::collection::vec((0..n, 0..n, 0.1f64..20.0), 0..16),
        )
            .prop_map(|(n, path_weights, extra)| RandomGraph { n, path_weights, extra })
    })
}

fn build(g: &RandomGraph) -> RoadNetwork {
    let mut b = GraphBuilder::new();
    let vs: Vec<VertexId> = (0..g.n).map(|_| b.add_vertex()).collect();
    for (i, &w) in g.path_weights.iter().enumerate() {
        b.add_edge(vs[i], vs[i + 1], w);
    }
    for &(a, c, w) in &g.extra {
        b.add_edge(vs[a], vs[c], w);
    }
    b.build()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn dijkstra_satisfies_triangle_inequality_on_edges(g in arb_graph()) {
        // For every edge (u, v, w): d(s, v) ≤ d(s, u) + w.
        let net = build(&g);
        let mut ws = DijkstraWorkspace::new(net.num_vertices());
        dijkstra(&net, &mut ws, VertexId(0));
        for u in net.vertices() {
            let du = ws.distance(u).expect("connected by construction");
            for (v, w) in net.neighbors(u) {
                let dv = ws.distance(v).unwrap();
                prop_assert!(dv <= du + w + Cost::new(1e-9));
            }
        }
    }

    #[test]
    fn dijkstra_parent_path_realises_distance(g in arb_graph()) {
        let net = build(&g);
        let mut ws = DijkstraWorkspace::new(net.num_vertices());
        dijkstra(&net, &mut ws, VertexId(0));
        for v in net.vertices() {
            let path = ws.path_to(v).expect("reachable");
            prop_assert_eq!(path.first().copied(), Some(VertexId(0)));
            prop_assert_eq!(path.last().copied(), Some(v));
            let cost = path_cost(&net, &path).expect("path uses real edges");
            let d = ws.distance(v).unwrap();
            prop_assert!((cost.get() - d.get()).abs() <= 1e-9 * (1.0 + d.get()));
        }
    }

    #[test]
    fn point_to_point_matches_full_search(g in arb_graph()) {
        let net = build(&g);
        let mut ws = DijkstraWorkspace::new(net.num_vertices());
        let target = VertexId((g.n - 1) as u32);
        let early = shortest_distance(&net, &mut ws, VertexId(0), target);
        dijkstra(&net, &mut ws, VertexId(0));
        prop_assert_eq!(early, ws.distance(target));
    }

    #[test]
    fn resumable_settles_same_distances(g in arb_graph()) {
        let net = build(&g);
        let mut ws = DijkstraWorkspace::new(net.num_vertices());
        dijkstra(&net, &mut ws, VertexId(0));
        let mut rd = ResumableDijkstra::new(&net, VertexId(0));
        let mut settled = 0usize;
        let mut last = Cost::ZERO;
        while let Some((v, d)) = rd.next_settled() {
            prop_assert!(d >= last, "settle order must be non-decreasing");
            last = d;
            prop_assert_eq!(Some(d), ws.distance(v));
            settled += 1;
        }
        prop_assert_eq!(settled, net.num_vertices());
    }

    #[test]
    fn multi_source_equals_min_over_sources(g in arb_graph()) {
        let net = build(&g);
        let mut ws = DijkstraWorkspace::new(net.num_vertices());
        let sources = [VertexId(0), VertexId((g.n / 2) as u32)];
        let dest = VertexId((g.n - 1) as u32);
        let got = min_set_distance(&net, &mut ws, &sources, |v| v == dest, Cost::INFINITY)
            .hit
            .map(|(_, d)| d);
        let mut expect: Option<Cost> = None;
        for s in sources {
            dijkstra(&net, &mut ws, s);
            if let Some(d) = ws.distance(dest) {
                expect = Some(expect.map_or(d, |e| e.min(d)));
            }
        }
        prop_assert_eq!(got, expect);
    }

    #[test]
    fn distances_are_symmetric_on_undirected_graphs(g in arb_graph()) {
        let net = build(&g);
        let mut ws = DijkstraWorkspace::new(net.num_vertices());
        let a = VertexId(0);
        let b = VertexId((g.n - 1) as u32);
        let ab = shortest_distance(&net, &mut ws, a, b).unwrap();
        let ba = shortest_distance(&net, &mut ws, b, a).unwrap();
        prop_assert!((ab.get() - ba.get()).abs() <= 1e-9 * (1.0 + ab.get()));
    }
}
