//! The paper's §7.5 / Table 9 use case: a Tokyo night out — beer garden,
//! sushi restaurant, sake bar — ending at the hotel (the §6 "SkySR with
//! destination" variant).
//!
//! The only beer garden is across town, so the perfect route is 7.5 km;
//! swapping it for the pub around the corner (same "Bar" subtree in the
//! Foursquare hierarchy) cuts the trip to 1.3 km at a small semantic cost.
//!
//! ```text
//! cargo run --release --example night_out
//! ```

use skysr::category::foursquare::foursquare_forest;
use skysr::core::bssr::BssrConfig;
use skysr::core::variants::destination::DestinationQuery;
use skysr::core::{PoiTable, QueryContext, SkySrQuery};
use skysr::graph::GraphBuilder;

fn main() {
    let forest = foursquare_forest();
    let cat = |n: &str| forest.by_name(n).expect("category exists");

    let mut g = GraphBuilder::new();
    let start = g.add_vertex();
    let beer_garden = g.add_vertex();
    let pub_ = g.add_vertex();
    let sushi_near = g.add_vertex();
    let sushi_far = g.add_vertex();
    let sake_near = g.add_vertex();
    let sake_far = g.add_vertex();
    let hotel = g.add_vertex();
    g.add_edge(start, beer_garden, 3300.0);
    g.add_edge(start, pub_, 250.0);
    g.add_edge(pub_, sushi_near, 400.0);
    g.add_edge(sushi_near, sake_near, 345.0);
    g.add_edge(sake_near, hotel, 300.0);
    g.add_edge(beer_garden, sushi_far, 2000.0);
    g.add_edge(sushi_far, sake_far, 1500.0);
    g.add_edge(sake_far, hotel, 651.0);
    g.add_edge(hotel, start, 500.0);
    let graph = g.build();

    let mut pois = PoiTable::new(graph.num_vertices());
    pois.add_poi(beer_garden, cat("Beer Garden"));
    pois.add_poi(pub_, cat("Pub"));
    pois.add_poi(sushi_near, cat("Sushi Restaurant"));
    pois.add_poi(sushi_far, cat("Sushi Restaurant"));
    pois.add_poi(sake_near, cat("Sake Bar"));
    pois.add_poi(sake_far, cat("Sake Bar"));
    pois.finalize(&forest);

    let ctx = QueryContext::new(&graph, &forest, &pois);
    let query =
        SkySrQuery::new(start, [cat("Beer Garden"), cat("Sushi Restaurant"), cat("Sake Bar")]);
    let trip = DestinationQuery::new(query, hotel);
    let result = trip.run(&ctx, BssrConfig::default()).expect("valid query");

    println!("Table 9 — night out ending at the hotel:\n");
    for r in result.routes.iter().rev() {
        let stops: Vec<&str> =
            r.pois.iter().map(|&p| forest.name(pois.categories_of(p)[0])).collect();
        println!(
            "  {:>7.0} m  semantic {:.3}   {} -> (hotel)",
            r.length.get(),
            r.semantic,
            stops.join(" -> ")
        );
    }
    // The best route depends on the user and the weather (§7.5): the
    // skyline presents both so the user decides.
    assert!(result.routes.len() >= 2);
}
