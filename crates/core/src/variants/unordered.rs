//! Skyline trip planning without category order (§6).
//!
//! The user supplies a *set* of categories; a qualifying route visits one
//! matching PoI per category in any order. The search mirrors BSSR —
//! partial routes in a priority queue, Dijkstra expansion towards the PoIs
//! matching any still-unsatisfied category, threshold pruning against the
//! evolving skyline — but carries a satisfied-category bitmask instead of a
//! position index, and (as §6 notes) "deletes the categories that are
//! already included in the routes to find next PoI vertices". The
//! Lemma 5.5 path-similarity shortcuts are order-dependent and stay off;
//! the result is the exact unordered skyline (property-tested against a
//! permutation oracle).

use std::collections::BinaryHeap;
use std::time::Instant;

use skysr_category::CategoryId;
use skysr_graph::{dijkstra_with, Cost, DijkstraWorkspace, Settle, VertexId};

use crate::context::QueryContext;
use crate::dominance::{skyline_of, SkylineSet};
use crate::error::QueryError;
use crate::naive::naive_skysr;
use crate::prepared::PreparedQuery;
use crate::query::SkySrQuery;
use crate::route::{PartialRoute, SkylineRoute};
use crate::stats::QueryStats;

/// An unordered skyline trip-planning query.
#[derive(Clone, Debug, PartialEq)]
pub struct UnorderedQuery {
    /// Start vertex.
    pub start: VertexId,
    /// Categories to cover (order irrelevant; ≤ 16 categories).
    pub categories: Vec<CategoryId>,
}

/// Result of an unordered query.
#[derive(Clone, Debug)]
pub struct UnorderedResult {
    /// Skyline routes; PoIs listed in visiting order.
    pub routes: Vec<SkylineRoute>,
    /// Instrumentation.
    pub stats: QueryStats,
}

struct MaskedRoute {
    route: PartialRoute,
    mask: u16,
}

impl PartialEq for MaskedRoute {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == std::cmp::Ordering::Equal
    }
}
impl Eq for MaskedRoute {}
impl PartialOrd for MaskedRoute {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for MaskedRoute {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Same arrangement as the ordered queue: larger routes first, then
        // semantically better, then shorter.
        self.route
            .len()
            .cmp(&other.route.len())
            .then_with(|| Cost::new(other.route.semantic()).cmp(&Cost::new(self.route.semantic())))
            .then_with(|| other.route.length().cmp(&self.route.length()))
    }
}

impl UnorderedQuery {
    /// Convenience constructor.
    pub fn new(
        start: VertexId,
        categories: impl IntoIterator<Item = CategoryId>,
    ) -> UnorderedQuery {
        UnorderedQuery { start, categories: categories.into_iter().collect() }
    }

    /// Runs the unordered skyline search.
    pub fn run(&self, ctx: &QueryContext<'_>) -> Result<UnorderedResult, QueryError> {
        assert!(self.categories.len() <= 16, "mask-based search supports up to 16 categories");
        let t0 = Instant::now();
        // Reuse the ordered compiler for per-category tables; the "order"
        // of positions is irrelevant here.
        let pq =
            PreparedQuery::prepare(ctx, &SkySrQuery::new(self.start, self.categories.clone()))?;
        let k = pq.len();
        let full: u16 = if k == 16 { u16::MAX } else { (1u16 << k) - 1 };
        let mut stats = QueryStats::default();
        if pq.unmatchable_position().is_some() {
            return Ok(UnorderedResult { routes: Vec::new(), stats });
        }

        let mut skyline = SkylineSet::new();
        let mut ws = DijkstraWorkspace::new(ctx.graph.num_vertices());

        // Greedy initial route (NNinit's spirit, order chosen greedily):
        // repeatedly walk to the nearest perfect match of any unsatisfied
        // category.
        self.greedy_init(ctx, &pq, full, &mut ws, &mut skyline, &mut stats);

        // Main branch-and-bound loop.
        let mut queue: BinaryHeap<MaskedRoute> = BinaryHeap::new();
        self.expand(
            ctx,
            &pq,
            &PartialRoute::empty(),
            0,
            full,
            &mut ws,
            &mut queue,
            &mut skyline,
            &mut stats,
        );
        while let Some(MaskedRoute { route, mask }) = queue.pop() {
            if route.length() >= skyline.threshold(route.semantic()) {
                stats.threshold_prunes += 1;
                continue;
            }
            self.expand(
                ctx,
                &pq,
                &route,
                mask,
                full,
                &mut ws,
                &mut queue,
                &mut skyline,
                &mut stats,
            );
        }
        stats.total_time = t0.elapsed();
        Ok(UnorderedResult { routes: skyline.into_routes(), stats })
    }

    #[allow(clippy::too_many_arguments)]
    fn greedy_init(
        &self,
        ctx: &QueryContext<'_>,
        pq: &PreparedQuery,
        full: u16,
        ws: &mut DijkstraWorkspace,
        skyline: &mut SkylineSet,
        stats: &mut QueryStats,
    ) {
        let t0 = Instant::now();
        let mut route = PartialRoute::empty();
        let mut mask: u16 = 0;
        let mut source = self.start;
        while mask != full {
            let mut hit: Option<(VertexId, Cost, usize)> = None;
            let s = dijkstra_with(ctx.graph, ws, &[(source, Cost::ZERO)], |u, d| {
                if route.contains(u) {
                    return Settle::Continue;
                }
                for (i, pos) in pq.positions.iter().enumerate() {
                    if mask & (1 << i) == 0 && pos.is_perfect(ctx, u) {
                        hit = Some((u, d, i));
                        return Settle::Stop;
                    }
                }
                Settle::Continue
            });
            stats.search.merge(&s);
            match hit {
                Some((u, d, i)) => {
                    route = route.extend(u, d, 1.0);
                    mask |= 1 << i;
                    source = u;
                }
                None => break,
            }
        }
        if mask == full {
            skyline.update(route.into_skyline_route());
            stats.init_routes = 1;
        }
        stats.init_time = t0.elapsed();
    }

    /// Expands `route` (with satisfied-set `mask`) by searching outward
    /// from its end for PoIs matching any unsatisfied category.
    #[allow(clippy::too_many_arguments)]
    fn expand(
        &self,
        ctx: &QueryContext<'_>,
        pq: &PreparedQuery,
        route: &PartialRoute,
        mask: u16,
        full: u16,
        ws: &mut DijkstraWorkspace,
        queue: &mut BinaryHeap<MaskedRoute>,
        skyline: &mut SkylineSet,
        stats: &mut QueryStats,
    ) {
        let source = route.last_poi().unwrap_or(self.start);
        let base = route.length();
        stats.mdijkstra_runs += 1;
        // Candidate collection: we cannot mutate the skyline inside the
        // settle callback (the threshold is snapshotted), so candidates are
        // gathered first and processed after.
        let mut found: Vec<(VertexId, Cost, usize, f64)> = Vec::new();
        let threshold = skyline.threshold(route.semantic());
        let s = dijkstra_with(ctx.graph, ws, &[(source, Cost::ZERO)], |u, d| {
            if base + d >= threshold {
                return Settle::Stop;
            }
            if !route.contains(u) {
                for (i, pos) in pq.positions.iter().enumerate() {
                    if mask & (1 << i) == 0 {
                        let sim = pos.sim_of(ctx, u);
                        if sim > 0.0 {
                            found.push((u, d, i, sim));
                        }
                    }
                }
            }
            Settle::Continue
        });
        stats.search.merge(&s);
        for (u, d, i, sim) in found {
            let rt = route.extend(u, d, sim);
            if rt.length() >= skyline.threshold(rt.semantic()) {
                stats.threshold_prunes += 1;
                continue;
            }
            let new_mask = mask | (1 << i);
            if new_mask == full {
                skyline.update(rt.into_skyline_route());
            } else {
                stats.routes_enqueued += 1;
                queue.push(MaskedRoute { route: rt, mask: new_mask });
                stats.queue_peak = stats.queue_peak.max(queue.len());
            }
        }
    }
}

/// Exhaustive oracle for the unordered query: the skyline over all
/// category orderings (each computed by the ordered oracle).
pub fn naive_unordered(
    ctx: &QueryContext<'_>,
    q: &UnorderedQuery,
    limit: u64,
) -> Result<Vec<SkylineRoute>, QueryError> {
    let mut all = Vec::new();
    let mut order: Vec<CategoryId> = q.categories.clone();
    permute(&mut order, 0, &mut |perm| {
        let pq = PreparedQuery::prepare(ctx, &SkySrQuery::new(q.start, perm.to_vec()))?;
        all.extend(naive_skysr(ctx, &pq, limit));
        Ok(())
    })?;
    Ok(skyline_of(all))
}

fn permute<E>(
    items: &mut [CategoryId],
    at: usize,
    f: &mut impl FnMut(&[CategoryId]) -> Result<(), E>,
) -> Result<(), E> {
    if at == items.len() {
        return f(items);
    }
    for i in at..items.len() {
        items.swap(at, i);
        permute(items, at + 1, f)?;
        items.swap(at, i);
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::paper_example::PaperExample;

    #[test]
    fn unordered_never_worse_than_ordered() {
        let ex = PaperExample::new();
        let ctx = ex.context();
        let asian = ex.forest.by_name("Asian Restaurant").unwrap();
        let arts = ex.forest.by_name("Arts & Entertainment").unwrap();
        let gift = ex.forest.by_name("Gift Shop").unwrap();
        let unordered = UnorderedQuery::new(ex.vq, [asian, arts, gift]).run(&ctx).unwrap();
        let ordered = crate::bssr::Bssr::new(&ctx).run(&ex.query()).unwrap();
        // Every ordered route is a feasible unordered route, so the best
        // unordered perfect route is at most the ordered one.
        let best_u = unordered.routes.iter().filter(|r| r.semantic == 0.0).map(|r| r.length).min();
        let best_o = ordered.routes.iter().filter(|r| r.semantic == 0.0).map(|r| r.length).min();
        assert!(best_u.unwrap() <= best_o.unwrap());
    }

    #[test]
    fn matches_permutation_oracle() {
        let ex = PaperExample::new();
        let ctx = ex.context();
        let asian = ex.forest.by_name("Asian Restaurant").unwrap();
        let arts = ex.forest.by_name("Arts & Entertainment").unwrap();
        let gift = ex.forest.by_name("Gift Shop").unwrap();
        let q = UnorderedQuery::new(ex.vq, [asian, arts, gift]);
        let got = q.run(&ctx).unwrap();
        let want = naive_unordered(&ctx, &q, crate::naive::DEFAULT_CANDIDATE_LIMIT).unwrap();
        assert_eq!(got.routes, want);
    }

    #[test]
    fn two_category_unordered() {
        let ex = PaperExample::new();
        let ctx = ex.context();
        let arts = ex.forest.by_name("Arts & Entertainment").unwrap();
        let gift = ex.forest.by_name("Gift Shop").unwrap();
        let q = UnorderedQuery::new(ex.vq, [gift, arts]);
        let got = q.run(&ctx).unwrap();
        let want = naive_unordered(&ctx, &q, crate::naive::DEFAULT_CANDIDATE_LIMIT).unwrap();
        assert_eq!(got.routes, want);
        assert!(!got.routes.is_empty());
    }

    #[test]
    fn single_category_equals_ordered() {
        let ex = PaperExample::new();
        let ctx = ex.context();
        let gift = ex.forest.by_name("Gift Shop").unwrap();
        let q = UnorderedQuery::new(ex.vq, [gift]);
        let got = q.run(&ctx).unwrap();
        let ordered = crate::bssr::Bssr::new(&ctx).run(&SkySrQuery::new(ex.vq, [gift])).unwrap();
        assert_eq!(got.routes, ordered.routes);
    }
}
