//! Smoke tests for the experiment drivers: every table/figure generator
//! must run end-to-end on a miniature configuration. Protects the
//! reproduction harness itself from regressions.

use skysr_bench::{experiments, ExpConfig};
use skysr_data::dataset::{Dataset, DatasetSpec, Preset};

fn tiny_config() -> ExpConfig {
    ExpConfig {
        queries: 2,
        baseline_queries: 1,
        seq_max: 2,
        baseline_max_combos: 10_000,
        scale: 1.0,
        full: false,
        seed: 5,
    }
}

fn tiny_datasets() -> Vec<Dataset> {
    vec![
        DatasetSpec::preset(Preset::TokyoSmall).scale(0.02).seed(51).generate(),
        DatasetSpec::preset(Preset::CalSmall).scale(0.05).seed(52).generate(),
    ]
}

#[test]
fn every_experiment_driver_runs() {
    let cfg = tiny_config();
    let datasets = tiny_datasets();
    ExpConfig::print_dataset_table(&datasets);
    experiments::table1_and_9();
    experiments::fig3(&cfg, &datasets);
    experiments::table6(&cfg, &datasets);
    experiments::table7(&cfg, &datasets);
    experiments::table8(&cfg, &datasets);
    experiments::fig4(&cfg, &datasets);
    experiments::ablation_bounds(&cfg, &datasets);
    experiments::fig5(&cfg, &datasets);
    experiments::fig6(&cfg, &datasets);
}

#[test]
fn config_datasets_generates_in_parallel() {
    // Exercises the scoped-thread parallel generation path.
    let cfg = ExpConfig { scale: 0.02, ..tiny_config() };
    let datasets = cfg.datasets();
    assert_eq!(datasets.len(), 3);
    for d in &datasets {
        assert!(skysr_graph::connectivity::is_connected(&d.graph), "{}", d.name);
    }
}
