//! The owned, shareable counterpart of `skysr_core::QueryContext`.

use std::sync::Arc;

use skysr_category::{CategoryForest, Similarity, WuPalmer};
use skysr_core::{PoiTable, QueryContext};
use skysr_data::dataset::Dataset;
use skysr_graph::RoadNetwork;

/// Owned bundle of graph + category forest + PoI table + similarity
/// measure.
///
/// The borrowed [`QueryContext`] ties a query to the stack frame owning
/// the data; a `ServiceContext` instead *owns* the data, so one
/// `Arc<ServiceContext>` can be moved into any number of worker threads.
/// Workers derive a borrowed `QueryContext` via [`Self::query_context`]
/// and run the existing engines on it unchanged.
pub struct ServiceContext {
    graph: RoadNetwork,
    forest: CategoryForest,
    pois: PoiTable,
    similarity: Arc<dyn Similarity>,
}

// Shared immutably across worker threads; everything inside is either
// plain owned data or an `Arc<dyn Similarity>` whose trait requires
// `Send + Sync`. Keep that a compile-time fact:
const _: fn() = || {
    fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<ServiceContext>();
};

impl ServiceContext {
    /// Context with the default Wu–Palmer similarity.
    pub fn new(graph: RoadNetwork, forest: CategoryForest, pois: PoiTable) -> ServiceContext {
        ServiceContext::with_similarity(graph, forest, pois, Arc::new(WuPalmer))
    }

    /// Context with a custom similarity measure.
    pub fn with_similarity(
        graph: RoadNetwork,
        forest: CategoryForest,
        pois: PoiTable,
        similarity: Arc<dyn Similarity>,
    ) -> ServiceContext {
        ServiceContext { graph, forest, pois, similarity }
    }

    /// Takes ownership of a generated (or loaded) dataset's graph, forest
    /// and PoI table.
    pub fn from_dataset(dataset: Dataset) -> ServiceContext {
        ServiceContext::new(dataset.graph, dataset.forest, dataset.pois)
    }

    /// A borrowed [`QueryContext`] over this context, usable with every
    /// algorithm in `skysr-core`.
    pub fn query_context(&self) -> QueryContext<'_> {
        QueryContext::with_similarity(&self.graph, &self.forest, &self.pois, &*self.similarity)
    }

    /// The road network.
    pub fn graph(&self) -> &RoadNetwork {
        &self.graph
    }

    /// The category forest.
    pub fn forest(&self) -> &CategoryForest {
        &self.forest
    }

    /// The PoI table.
    pub fn pois(&self) -> &PoiTable {
        &self.pois
    }
}

impl std::fmt::Debug for ServiceContext {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServiceContext")
            .field("vertices", &self.graph.num_vertices())
            .field("edges", &self.graph.num_edges())
            .field("pois", &self.pois.num_pois())
            .field("categories", &self.forest.num_categories())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use skysr_core::bssr::Bssr;
    use skysr_core::paper_example::PaperExample;

    fn paper_service_context() -> ServiceContext {
        let ex = PaperExample::new();
        ServiceContext::new(ex.graph.clone(), ex.forest.clone(), ex.pois.clone())
    }

    #[test]
    fn query_context_matches_borrowed_results() {
        let ex = PaperExample::new();
        let owned = paper_service_context();
        let from_owned = Bssr::new(&owned.query_context()).run(&ex.query()).unwrap();
        let from_borrowed = Bssr::new(&ex.context()).run(&ex.query()).unwrap();
        assert_eq!(from_owned.routes, from_borrowed.routes);
    }

    #[test]
    fn shared_across_threads() {
        let ex = PaperExample::new();
        let ctx = std::sync::Arc::new(paper_service_context());
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let ctx = std::sync::Arc::clone(&ctx);
                let query = ex.query();
                std::thread::spawn(move || {
                    Bssr::new(&ctx.query_context()).run(&query).unwrap().routes
                })
            })
            .collect();
        let results: Vec<_> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        for r in &results[1..] {
            assert_eq!(r, &results[0]);
        }
    }

    #[test]
    fn debug_shows_sizes() {
        let s = format!("{:?}", paper_service_context());
        assert!(s.contains("vertices"), "{s}");
    }
}
