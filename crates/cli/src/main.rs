//! `skysr-cli` — a command-line SkySR query service.
//!
//! The paper's §8 prototype let users pick a start point and a category
//! sequence and returned skyline routes on a city map. This CLI is the
//! library-reproduction analogue: generate a city, inspect its categories,
//! and run SkySR queries (optionally with a destination) against it.
//!
//! ```text
//! skysr-cli generate --preset cal-small --scale 0.2 --seed 7 --out city.txt
//! skysr-cli info city.txt
//! skysr-cli categories city.txt --top 15
//! skysr-cli query city.txt --start 12 --categories "t0/n4,t1/n7" [--destination 99]
//! skysr-cli replay [city.txt] --queries 1000 --workers 4 [--pattern duplicate] [--verify true]
//! skysr-cli bench --out BENCH_pr.json [--require-speedup 2.0] [--require-repair-speedup 1.5]
//! skysr-cli demo
//! ```
//!
//! `replay` drives the concurrent `skysr-service` engine: it streams a
//! skewed workload (`--pattern zipf` Zipf-popular arrivals, `duplicate`
//! bursts of identical in-flight requests, `prefix` chains extended one
//! position at a time, `hierarchy` category-subtree chains walking
//! suffix → ancestor variant → full query) through a worker pool with a
//! cross-query result cache, request coalescing and semantic reuse
//! (prefix, ancestor-category and suffix warm starts — individually
//! toggleable via `--prefix-reuse` / `--ancestor-reuse` /
//! `--suffix-reuse`), and prints throughput, latency percentiles, cache
//! and per-strategy reuse statistics.
//! `--qps N` switches from closed-loop batching to an open-loop arrival
//! process (exponential inter-arrivals at the target rate), and
//! `--update-rate R` publishes bursts of `--update-burst` random
//! edge-weight changes per second as new weight epochs while the stream is
//! in flight; `--update-every N` instead publishes one burst after every
//! N completed requests (synchronous closed-loop update waves).
//! `--deadline-ms F` attaches a per-request deadline: requests whose
//! deadline expires while still queued are shed un-executed, and a search
//! truncated mid-engine returns a valid *approximate* partial skyline
//! (never cached, audited by `--verify` as consistent with the exact
//! answer). `--admission true` turns on the admission gate, which sheds
//! provably-unmeetable deadlines at submit time, and `--overload X`
//! measures the service's capacity with a short calibration pass and then
//! drives an open-loop stream at `X` times it (exclusive with `--qps` and
//! `--update-every`); the report adds shed/approximate/met-deadline
//! accounting.
//! `--verify true` re-answers every request sequentially *at
//! the epoch it was served under* and fails unless the concurrent skylines
//! are score-equivalent; the run also fails if any answer was served from
//! a stale (non-pinned-epoch) cache entry — the staleness gate.
//! `--repair true` turns on incremental skyline repair: a cached answer
//! from an older epoch is repaired against the exact epoch delta and
//! promoted in place instead of invalidated and recomputed (still
//! oracle-exact under `--verify`), and one-epoch-stale prefix skylines
//! provably untouched by the delta still seed warm starts.
//! `--retention K` bounds the weight-epoch history to the newest K epochs
//! (overlays beyond the ring are compacted once no reader leases them);
//! combined with `--verify`, the oracle audits every response whose
//! pinned epoch is still within the ring and reports how many it had to
//! skip (epochs already compacted away).
//! `--trace-out FILE` switches span retention to *full* (one
//! [`TraceSpan`](skysr_service::TraceSpan) per request), dumps the spans
//! as JSON lines, and fails the run if the trace-completeness invariant
//! breaks (any response without exactly one span whose rung and epoch
//! match); `--metrics-out FILE` writes the run's counters and latency
//! histograms (end-to-end, queue-wait, engine, and per-rung) as
//! Prometheus text exposition, every series carrying a `shard` label
//! (`0` for a single-tenant run).
//! `--shards N` replays multi-tenant: N regions (one generated dataset
//! per shard, seeds `--seed`, `--seed`+1, …) behind one in-process
//! router, each shard driving its own stream and update process through
//! region-stamped requests; every gate (`--verify`, staleness, trace
//! completeness) is enforced per shard and any misrouted request fails
//! the run.
//!
//! `bench` replays duplicate-heavy, prefix-heavy, dynamic (weight
//! updates racing the stream), hierarchy (ancestor+suffix seeding vs.
//! cold searches over a subtree walk) and repair (incremental repair vs.
//! invalidate-and-recompute under deterministic update waves) workloads
//! twice each — baseline vs. treatment — and writes the
//! JSON metrics artifact CI uploads as `BENCH_pr.json` (throughput,
//! p50/p99, queue-wait percentiles, per-rung latency summaries,
//! hit/coalesce/warm-start/repair rates, epochs published, invalidations,
//! verified correctness, speedups). A sixth *telemetry* cell replays the
//! duplicate stream with span retention off vs. a span per request and
//! reports the throughput ratio; a seventh *net* cell toggles the
//! transport (in-process vs. loopback `skysr-d`); an eighth *overload*
//! cell drives a low-reuse stream at half vs. twice measured capacity
//! with a deadline and admission control, reporting the hit-rung p99
//! ratio and shed/approximate counts. `--require-speedup X`
//! fails the run unless the duplicate-workload speedup reaches `X`;
//! `--require-hierarchy-speedup X` and `--require-repair-speedup X` do
//! the same for the hierarchy and repair cells;
//! `--require-telemetry-ratio X` fails unless full tracing retains at
//! least fraction `X` of untraced throughput (0.95 = at most 5%
//! overhead); `--require-overload-ratio X` fails unless the overloaded
//! cell actually shed load *and* kept its hit-rung p99 within `X` times
//! its uncontended value floored at the deadline budget; a ninth
//! *shards* cell serves four regions behind a router vs. a monolith on
//! the union working set, gated by `--require-shard-speedup X` on the
//! aggregate-throughput ratio; any stale serve fails either
//! unconditionally.
//! Bench also accepts `--trace-out`/`--metrics-out` (spans and Prometheus
//! text across all cells, each labelled by workload and mode).

use std::process::ExitCode;
use std::sync::Arc;
use std::time::Duration;

use skysr_cli::args::Args;
use skysr_cli::city::{
    check_seq_len, dataset_args, load, load_or_generate, parse_flag, parse_preset, CityArgs,
};
use skysr_cli::serve;
use skysr_core::bssr::{Bssr, BssrConfig};
use skysr_core::variants::destination::DestinationQuery;
use skysr_core::variants::rated::RatedQuery;
use skysr_core::variants::unordered::UnorderedQuery;
use skysr_core::{SkySrQuery, SkylineRoute};
use skysr_data::codec;
use skysr_data::dataset::{Dataset, DatasetSpec, Preset};
use skysr_graph::VertexId;
use skysr_service::bench::{bench, BenchSpec};
use skysr_service::replay::{
    build_pool, replay, replay_remote, replay_sharded, ReplaySpec, StreamPattern, TelemetryMode,
};
use skysr_service::telemetry::export::{prometheus, spans_to_json_lines};
use skysr_service::{MetricsSnapshot, QueryService, RemoteService, ServiceContext};

/// How long `--connect` commands wait for a daemon still binding its
/// socket (CI starts the daemon in the background and races it).
const CONNECT_TIMEOUT: Duration = Duration::from_secs(10);

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match run(argv) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!();
            eprintln!("{}", usage());
            ExitCode::FAILURE
        }
    }
}

fn usage() -> &'static str {
    "usage:\n  \
     skysr-cli generate --preset <tokyo|nyc|cal|tokyo-small|nyc-small|cal-small> \
     [--scale F] [--seed N] --out FILE\n  \
     skysr-cli info FILE\n  \
     skysr-cli categories FILE [--top N]\n  \
     skysr-cli query FILE --start VERTEX --categories \"A,B,C\"\n  \
     \t[--destination VERTEX] [--mode ordered|unordered|rated]\n  \
     skysr-cli replay [FILE] [--preset P] [--scale F] [--seed N] [--queries N]\n  \
     \t[--distinct N] [--workers N] [--seq-len K] [--zipf S] [--cache N]\n  \
     \t[--queue N] [--pattern zipf|duplicate|prefix|hierarchy] [--burst N]\n  \
     \t[--coalesce true|false] [--prefix-reuse true|false]\n  \
     \t[--ancestor-reuse true|false] [--suffix-reuse true|false]\n  \
     \t[--verify true|false] [--repair true|false] [--retention K] [--qps F]\n  \
     \t[--update-rate F] [--update-burst N] [--update-magnitude F]\n  \
     \t[--update-every N] [--deadline-ms F] [--overload X]\n  \
     \t[--admission true|false] [--shards N] [--trace-out FILE.jsonl]\n  \
     \t[--metrics-out FILE.prom] [--connect HOST:PORT]\n  \
     skysr-cli bench [FILE] [--preset P] [--scale F] [--seed N] [--queries N]\n  \
     \t[--distinct N] [--workers N] [--seq-len K] [--burst N] [--out FILE.json]\n  \
     \t[--update-rate F] [--update-burst N] [--require-speedup X]\n  \
     \t[--require-hierarchy-speedup X] [--require-repair-speedup X]\n  \
     \t[--require-telemetry-ratio X] [--require-net-ratio X]\n  \
     \t[--require-overload-ratio X] [--require-shard-speedup X]\n  \
     \t[--trace-out FILE.jsonl] [--metrics-out FILE.prom]\n  \
     skysr-cli serve [FILE] [--preset P] [--scale F] [--seed N]\n  \
     \t[--addr HOST:PORT] [--workers N] [--cache N] [--queue N]\n  \
     \t[--coalesce true|false] [--prefix-reuse true|false]\n  \
     \t[--ancestor-reuse true|false] [--suffix-reuse true|false]\n  \
     \t[--repair true|false] [--admission true|false] [--shards N]\n  \
     skysr-cli shutdown --connect HOST:PORT\n  \
     skysr-cli demo"
}

fn run(argv: Vec<String>) -> Result<(), String> {
    let mut args = Args::parse(argv)?;
    match args.command.as_str() {
        "generate" => {
            let preset = parse_preset(&args.require("preset")?)?;
            let mut spec = DatasetSpec::preset(preset);
            if let Some(s) = args.optional("scale") {
                spec = spec.scale(s.parse().map_err(|_| "bad --scale".to_string())?);
            }
            if let Some(s) = args.optional("seed") {
                spec = spec.seed(s.parse().map_err(|_| "bad --seed".to_string())?);
            }
            let out = args.require("out")?;
            args.finish()?;
            eprintln!("generating {} ...", spec.name);
            let dataset = spec.generate();
            codec::save_dataset(&dataset, &out).map_err(|e| e.to_string())?;
            let (v, p, e) = dataset.stats();
            println!("wrote {out}: |V|={v} |P|={p} |E|={e}");
            Ok(())
        }
        "info" => {
            let dataset = load(&args.positional()?)?;
            args.finish()?;
            let (v, p, e) = dataset.stats();
            println!("dataset    {}", dataset.name);
            println!("vertices   {v}");
            println!("pois       {p}");
            println!("edges      {e}");
            println!(
                "categories {} in {} trees",
                dataset.forest.num_categories(),
                dataset.forest.num_trees()
            );
            Ok(())
        }
        "categories" => {
            let dataset = load(&args.positional()?)?;
            let top: usize = args
                .optional("top")
                .map(|s| s.parse().map_err(|_| "bad --top".to_string()))
                .transpose()?
                .unwrap_or(20);
            args.finish()?;
            let mut hist: Vec<_> =
                dataset.pois.category_histogram().into_iter().filter(|&(_, n)| n > 0).collect();
            hist.sort_by_key(|&(_, n)| std::cmp::Reverse(n));
            for (c, n) in hist.into_iter().take(top) {
                println!("{n:>7}  {}", dataset.forest.name(c));
            }
            Ok(())
        }
        "query" => {
            let dataset = load(&args.positional()?)?;
            let start: u32 =
                args.require("start")?.parse().map_err(|_| "bad --start".to_string())?;
            let cats_arg = args.require("categories")?;
            let dest = args
                .optional("destination")
                .map(|s| s.parse::<u32>().map_err(|_| "bad --destination".to_string()))
                .transpose()?;
            let mode = args.optional("mode").unwrap_or_else(|| "ordered".to_owned());
            args.finish()?;
            let mut cats = Vec::new();
            for name in cats_arg.split(',') {
                let name = name.trim();
                let c = dataset
                    .forest
                    .by_name(name)
                    .ok_or_else(|| format!("unknown category {name:?}"))?;
                cats.push(c);
            }
            let ctx = dataset.context();
            match mode.as_str() {
                "ordered" => {
                    let query = SkySrQuery::new(VertexId(start), cats);
                    let routes = match dest {
                        Some(d) => {
                            DestinationQuery::new(query, VertexId(d))
                                .run(&ctx, BssrConfig::default())
                                .map_err(|e| e.to_string())?
                                .routes
                        }
                        None => Bssr::new(&ctx).run(&query).map_err(|e| e.to_string())?.routes,
                    };
                    print_routes(&dataset, &routes);
                }
                "unordered" => {
                    if dest.is_some() {
                        return Err("--destination is not supported with --mode unordered".into());
                    }
                    let q = UnorderedQuery::new(VertexId(start), cats);
                    let result = q.run(&ctx).map_err(|e| e.to_string())?;
                    print_routes(&dataset, &result.routes);
                }
                "rated" => {
                    if dest.is_some() {
                        return Err("--destination is not supported with --mode rated".into());
                    }
                    let ratings = dataset.ratings(0);
                    let q = RatedQuery::new(SkySrQuery::new(VertexId(start), cats));
                    let result = q.run(&ctx, &ratings).map_err(|e| e.to_string())?;
                    println!(
                        "{} skyline route(s) (length x semantics x rating):",
                        result.routes.len()
                    );
                    for r in &result.routes {
                        println!(
                            "  {:>10.1} m  semantic {:.3}  rating-deficit {:.3}  {:?}",
                            r.length.get(),
                            r.semantic,
                            r.rating,
                            r.pois
                        );
                    }
                }
                other => return Err(format!("unknown --mode {other:?}")),
            }
            Ok(())
        }
        "replay" => {
            let city = dataset_args(&mut args)?;
            let mut spec = ReplaySpec {
                total: parse_flag(&mut args, "queries", 1000)?,
                distinct: parse_flag(&mut args, "distinct", 100)?,
                seq_len: parse_flag(&mut args, "seq-len", 3)?,
                zipf_exponent: parse_flag(&mut args, "zipf", 1.0)?,
                workers: parse_flag(&mut args, "workers", 4)?,
                cache_capacity: parse_flag(&mut args, "cache", 1024)?,
                queue_capacity: parse_flag(&mut args, "queue", 256)?,
                burst: parse_flag(&mut args, "burst", 16)?,
                coalesce: parse_flag(&mut args, "coalesce", true)?,
                prefix_reuse: parse_flag(&mut args, "prefix-reuse", true)?,
                ancestor_reuse: parse_flag(&mut args, "ancestor-reuse", true)?,
                suffix_reuse: parse_flag(&mut args, "suffix-reuse", true)?,
                qps: parse_flag(&mut args, "qps", 0.0)?,
                update_rate: parse_flag(&mut args, "update-rate", 0.0)?,
                update_burst: parse_flag(&mut args, "update-burst", 32)?,
                update_magnitude: parse_flag(&mut args, "update-magnitude", 2.0)?,
                update_every: parse_flag(&mut args, "update-every", 0)?,
                repair: parse_flag(&mut args, "repair", false)?,
                retention: parse_flag(&mut args, "retention", 0)?,
                overload: parse_flag(&mut args, "overload", 0.0)?,
                admission: parse_flag(&mut args, "admission", false)?,
                seed: city.seed,
                ..ReplaySpec::default()
            };
            if let Some(ms) = args.optional("deadline-ms") {
                let ms: f64 = ms.parse().map_err(|_| "bad --deadline-ms".to_string())?;
                if !ms.is_finite() || ms <= 0.0 {
                    return Err("--deadline-ms must be a positive finite number".into());
                }
                spec.deadline = Some(Duration::from_secs_f64(ms / 1000.0));
            }
            spec.pattern = match args.optional("pattern").as_deref() {
                None | Some("zipf") => StreamPattern::Zipf,
                Some("duplicate") => StreamPattern::DuplicateBursts,
                Some("prefix") => StreamPattern::PrefixChains,
                Some("hierarchy") => StreamPattern::Hierarchy,
                Some(other) => return Err(format!("unknown --pattern {other:?}")),
            };
            spec.verify = parse_flag(&mut args, "verify", false)?;
            let shards: usize = parse_flag(&mut args, "shards", 1)?;
            let connect = args.optional("connect");
            let trace_out = args.optional("trace-out");
            let metrics_out = args.optional("metrics-out");
            // Dumping spans only makes sense over a complete record:
            // --trace-out switches span retention to full (every request),
            // which also arms the trace-completeness audit.
            if trace_out.is_some() {
                spec.telemetry = TelemetryMode::Full;
            }
            if connect.is_some() {
                if trace_out.is_some() {
                    return Err("--trace-out is unsupported with --connect (trace spans are not \
                         exported over the wire)"
                        .into());
                }
                if spec.retention > 0 {
                    return Err(
                        "--retention is unsupported with --connect (the local shadow cannot \
                         mirror server-side epoch compaction)"
                            .into(),
                    );
                }
            }
            args.finish()?;
            // Reject what the replay driver would otherwise panic on,
            // before paying for dataset generation.
            if spec.total == 0 || spec.distinct == 0 || spec.seq_len == 0 {
                return Err("--queries, --distinct and --seq-len must be at least 1".into());
            }
            if !spec.zipf_exponent.is_finite() || spec.zipf_exponent < 0.0 {
                return Err("--zipf must be a non-negative finite number".into());
            }
            if !spec.qps.is_finite() || spec.qps < 0.0 {
                return Err("--qps must be a non-negative finite number".into());
            }
            if !spec.update_rate.is_finite() || spec.update_rate < 0.0 {
                return Err("--update-rate must be a non-negative finite number".into());
            }
            if !spec.update_magnitude.is_finite() || spec.update_magnitude < 1.0 {
                return Err("--update-magnitude must be a finite number >= 1".into());
            }
            if spec.update_rate > 0.0 && spec.update_burst == 0 {
                return Err("--update-burst must be at least 1".into());
            }
            if spec.update_every > 0 && (spec.qps > 0.0 || spec.update_rate > 0.0) {
                return Err(
                    "--update-every replays synchronous closed-loop update waves and conflicts \
                     with the open-loop --qps/--update-rate knobs"
                        .into(),
                );
            }
            if !spec.overload.is_finite() || spec.overload < 0.0 {
                return Err("--overload must be a non-negative finite number".into());
            }
            if spec.overload > 0.0 && (spec.qps > 0.0 || spec.update_every > 0) {
                return Err(
                    "--overload resolves its own open-loop rate from measured capacity and \
                     conflicts with an explicit --qps and with --update-every"
                        .into(),
                );
            }
            if spec.overload > 0.0 && connect.is_some() {
                return Err(
                    "--overload is unsupported with --connect (capacity calibration runs on a \
                     local scratch service); drive the daemon with an explicit --qps instead"
                        .into(),
                );
            }
            if spec.pattern == StreamPattern::Hierarchy && spec.seq_len < 2 {
                return Err(
                    "--pattern hierarchy needs --seq-len >= 2 (each chain walks the query's \
                     suffix and an ancestor variant)"
                        .into(),
                );
            }
            if shards == 0 {
                return Err("--shards must be at least 1".into());
            }
            if shards > 1 {
                if connect.is_some() {
                    return Err("--shards replays against an in-process multi-shard router; \
                         a daemon's shard layout is fixed at startup (serve --shards)"
                        .into());
                }
                if spec.overload > 0.0 {
                    return Err(
                        "--overload calibration is single-tenant; drive shards with an explicit \
                         --qps instead"
                            .into(),
                    );
                }
                if city.file.is_some() {
                    return Err("--shards generates one dataset per region and conflicts with a \
                         dataset FILE argument"
                        .into());
                }
                let mut regions: Vec<(String, Dataset)> = Vec::with_capacity(shards);
                for i in 0..shards {
                    let region = CityArgs {
                        file: None,
                        preset: city.preset,
                        scale: city.scale,
                        seed: city.seed + i as u64,
                    };
                    let dataset = load_or_generate(&region)?;
                    check_seq_len(&dataset, spec.seq_len)?;
                    regions.push((format!("region-{i}"), dataset));
                }
                eprintln!(
                    "replaying {} requests per shard ({} distinct, {} stream) over {shards} \
                     shards x {} workers ...",
                    spec.total, spec.distinct, spec.pattern, spec.workers
                );
                let sharded = replay_sharded(regions, &spec);
                println!("{sharded}");
                if let Some(path) = &trace_out {
                    let mut lines = String::new();
                    for s in &sharded.shards {
                        lines.push_str(&spans_to_json_lines(&s.report.spans));
                    }
                    std::fs::write(path, lines).map_err(|e| format!("cannot write {path}: {e}"))?;
                    eprintln!("wrote {path}");
                }
                if let Some(path) = &metrics_out {
                    let pattern = spec.pattern.to_string();
                    let ids: Vec<String> =
                        sharded.shards.iter().map(|s| s.region.to_string()).collect();
                    let labels: Vec<[(&str, &str); 2]> = ids
                        .iter()
                        .map(|id| [("pattern", pattern.as_str()), ("shard", id.as_str())])
                        .collect();
                    let entries: Vec<(&[(&str, &str)], &MetricsSnapshot)> = sharded
                        .shards
                        .iter()
                        .zip(&labels)
                        .map(|(s, l)| (l.as_slice(), &s.report.metrics))
                        .collect();
                    std::fs::write(path, prometheus(&entries))
                        .map_err(|e| format!("cannot write {path}: {e}"))?;
                    eprintln!("wrote {path}");
                }
                for s in &sharded.shards {
                    if let Some(v) = s.report.trace_violations.filter(|&v| v > 0) {
                        return Err(format!(
                            "shard {} ({}): trace-completeness invariant violated: {v} \
                             violation(s)",
                            s.region, s.name
                        ));
                    }
                    if s.report.verify_mismatches.is_some_and(|m| m > 0) {
                        return Err(format!(
                            "shard {} ({}): verification failed: concurrent and sequential \
                             skylines differ",
                            s.region, s.name
                        ));
                    }
                    if let Some(skipped) = s.report.verify_skipped.filter(|&n| n > 0) {
                        eprintln!(
                            "note: shard {}: {skipped} response(s) were unverifiable (pinned \
                             epochs beyond the --retention ring) and were skipped",
                            s.region
                        );
                    }
                    if s.report.stale_served() > 0 {
                        return Err(format!(
                            "shard {} ({}): staleness gate failed: {} answer(s) served from a \
                             non-pinned-epoch cache entry",
                            s.region,
                            s.name,
                            s.report.stale_served()
                        ));
                    }
                }
                if sharded.misrouted > 0 {
                    return Err(format!(
                        "routing gate failed: {} request(s) named a region no shard serves",
                        sharded.misrouted
                    ));
                }
                return Ok(());
            }
            let dataset = load_or_generate(&city)?;
            check_seq_len(&dataset, spec.seq_len)?;
            let report = match &connect {
                Some(addr) => {
                    // The dataset recipe builds the *shadow*: the daemon
                    // must serve the same dataset (checked against its
                    // handshake fingerprint inside replay_remote).
                    let pool = build_pool(&dataset, &spec);
                    let shadow = Arc::new(ServiceContext::from_dataset(dataset));
                    let remote = RemoteService::connect_retry(addr.as_str(), CONNECT_TIMEOUT)
                        .map_err(|e| format!("cannot connect to {addr}: {e}"))?;
                    eprintln!(
                        "replaying {} requests ({} distinct, {} stream) over {addr} ...",
                        spec.total, spec.distinct, spec.pattern
                    );
                    replay_remote(&remote, shadow, &pool, &spec).map_err(|e| e.to_string())?
                }
                None => {
                    eprintln!(
                        "replaying {} requests ({} distinct, {} stream) on {} workers ...",
                        spec.total, spec.distinct, spec.pattern, spec.workers
                    );
                    replay(dataset, &spec)
                }
            };
            println!("{report}");
            if let Some(path) = &trace_out {
                std::fs::write(path, spans_to_json_lines(&report.spans))
                    .map_err(|e| format!("cannot write {path}: {e}"))?;
                eprintln!("wrote {} trace spans to {path}", report.spans.len());
            }
            if let Some(path) = &metrics_out {
                let pattern = spec.pattern.to_string();
                // Single-tenant runs are shard 0 (the default shard), so
                // the exporter's label schema is identical either way.
                let labels = [("pattern", pattern.as_str()), ("shard", "0")];
                std::fs::write(path, prometheus(&[(&labels, &report.metrics)]))
                    .map_err(|e| format!("cannot write {path}: {e}"))?;
                eprintln!("wrote {path}");
            }
            if let Some(v) = report.trace_violations.filter(|&v| v > 0) {
                return Err(format!(
                    "trace-completeness invariant violated: {v} violation(s) (a response \
                     without exactly one matching span, or rung/epoch disagreement)"
                ));
            }
            if report.verify_mismatches.is_some_and(|m| m > 0) {
                return Err("verification failed: concurrent and sequential skylines differ".into());
            }
            if let Some(skipped) = report.verify_skipped.filter(|&n| n > 0) {
                eprintln!(
                    "note: {skipped} response(s) were unverifiable (pinned epochs beyond the \
                     --retention ring) and were skipped"
                );
            }
            if report.stale_served() > 0 {
                return Err(format!(
                    "staleness gate failed: {} answer(s) served from a non-pinned-epoch cache \
                     entry",
                    report.stale_served()
                ));
            }
            Ok(())
        }
        "bench" => {
            let city = dataset_args(&mut args)?;
            let spec = BenchSpec {
                total: parse_flag(&mut args, "queries", 144)?,
                distinct: parse_flag(&mut args, "distinct", 8)?,
                seq_len: parse_flag(&mut args, "seq-len", 3)?,
                workers: parse_flag(&mut args, "workers", 8)?,
                burst: parse_flag(&mut args, "burst", 24)?,
                update_rate: parse_flag(&mut args, "update-rate", 200.0)?,
                update_burst: parse_flag(&mut args, "update-burst", 16)?,
                seed: city.seed,
                ..BenchSpec::default()
            };
            let out = args.optional("out");
            let require_speedup: Option<f64> = args
                .optional("require-speedup")
                .map(|s| s.parse().map_err(|_| "bad --require-speedup".to_string()))
                .transpose()?;
            let require_hierarchy_speedup: Option<f64> = args
                .optional("require-hierarchy-speedup")
                .map(|s| s.parse().map_err(|_| "bad --require-hierarchy-speedup".to_string()))
                .transpose()?;
            let require_repair_speedup: Option<f64> = args
                .optional("require-repair-speedup")
                .map(|s| s.parse().map_err(|_| "bad --require-repair-speedup".to_string()))
                .transpose()?;
            let require_telemetry_ratio: Option<f64> = args
                .optional("require-telemetry-ratio")
                .map(|s| s.parse().map_err(|_| "bad --require-telemetry-ratio".to_string()))
                .transpose()?;
            let require_net_ratio: Option<f64> = args
                .optional("require-net-ratio")
                .map(|s| s.parse().map_err(|_| "bad --require-net-ratio".to_string()))
                .transpose()?;
            let require_overload_ratio: Option<f64> = args
                .optional("require-overload-ratio")
                .map(|s| s.parse().map_err(|_| "bad --require-overload-ratio".to_string()))
                .transpose()?;
            let require_shard_speedup: Option<f64> = args
                .optional("require-shard-speedup")
                .map(|s| s.parse().map_err(|_| "bad --require-shard-speedup".to_string()))
                .transpose()?;
            let trace_out = args.optional("trace-out");
            let metrics_out = args.optional("metrics-out");
            args.finish()?;
            if spec.total == 0 || spec.distinct == 0 {
                return Err("--queries and --distinct must be at least 1".into());
            }
            if spec.seq_len < 2 {
                return Err(
                    "bench needs --seq-len >= 2 (the hierarchy cell walks each query's suffix \
                     and an ancestor variant)"
                        .into(),
                );
            }
            if !spec.update_rate.is_finite() || spec.update_rate <= 0.0 {
                // The dynamic cells need a real updater; a zero/invalid rate
                // would silently measure two static runs as "dynamic".
                return Err("--update-rate must be a positive finite number".into());
            }
            if spec.update_burst == 0 {
                return Err("--update-burst must be at least 1".into());
            }
            let dataset = load_or_generate(&city)?;
            check_seq_len(&dataset, spec.seq_len)?;
            eprintln!(
                "benchmarking reuse vs. exact-match baseline ({} requests, {} workers) ...",
                spec.total, spec.workers
            );
            let report = bench(dataset, &spec);
            println!("{report}");
            if let Some(path) = out {
                std::fs::write(&path, report.to_json())
                    .map_err(|e| format!("cannot write {path}: {e}"))?;
                eprintln!("wrote {path}");
            }
            if let Some(path) = &trace_out {
                let mut lines = String::new();
                for run in &report.runs {
                    lines.push_str(&spans_to_json_lines(&run.report.spans));
                }
                std::fs::write(path, lines).map_err(|e| format!("cannot write {path}: {e}"))?;
                eprintln!("wrote {path}");
            }
            if let Some(path) = &metrics_out {
                let labels: Vec<[(&str, &str); 3]> = report
                    .runs
                    .iter()
                    .map(|r| [("workload", r.workload), ("mode", r.mode), ("shard", "0")])
                    .collect();
                let entries: Vec<(&[(&str, &str)], &MetricsSnapshot)> = report
                    .runs
                    .iter()
                    .zip(&labels)
                    .map(|(r, l)| (l.as_slice(), &r.report.metrics))
                    .collect();
                std::fs::write(path, prometheus(&entries))
                    .map_err(|e| format!("cannot write {path}: {e}"))?;
                eprintln!("wrote {path}");
            }
            let trace_violations: usize =
                report.runs.iter().filter_map(|r| r.report.trace_violations).sum();
            if trace_violations > 0 {
                return Err(format!(
                    "trace-completeness invariant violated in {trace_violations} case(s) \
                     across the traced bench cells"
                ));
            }
            if report.verify_mismatches() > 0 {
                return Err("verification failed: reuse answers differ from sequential".into());
            }
            if report.stale_served() > 0 {
                return Err(format!(
                    "staleness gate failed: {} answer(s) served from a non-pinned-epoch cache \
                     entry",
                    report.stale_served()
                ));
            }
            if let Some(min) = require_speedup {
                if report.speedup_duplicate < min {
                    return Err(format!(
                        "duplicate-workload speedup {:.2}x is below the required {min:.2}x",
                        report.speedup_duplicate
                    ));
                }
            }
            if let Some(min) = require_hierarchy_speedup {
                if report.speedup_hierarchy < min {
                    return Err(format!(
                        "hierarchy-workload speedup {:.2}x is below the required {min:.2}x \
                         (ancestor+suffix seeding vs. cold searches)",
                        report.speedup_hierarchy
                    ));
                }
            }
            if let Some(min) = require_repair_speedup {
                if report.speedup_repair < min {
                    return Err(format!(
                        "repair-workload speedup {:.2}x is below the required {min:.2}x \
                         (repair vs. invalidate-and-recompute)",
                        report.speedup_repair
                    ));
                }
            }
            if let Some(min) = require_telemetry_ratio {
                if report.telemetry_overhead_ratio < min {
                    return Err(format!(
                        "telemetry overhead ratio {:.3} is below the required {min:.3} \
                         (full tracing costs more throughput than allowed)",
                        report.telemetry_overhead_ratio
                    ));
                }
            }
            if let Some(min) = require_net_ratio {
                if report.net_ratio < min {
                    return Err(format!(
                        "net overhead ratio {:.3} is below the required {min:.3} \
                         (the loopback socket transport costs more throughput than allowed)",
                        report.net_ratio
                    ));
                }
            }
            if let Some(max) = require_overload_ratio {
                // An overloaded service must both degrade (shed something —
                // otherwise the cell never actually overloaded and the
                // ratio is vacuous) and keep the cheap rung responsive.
                if report.overload_shed == 0 {
                    return Err("overload gate failed: the 2x-capacity cell shed nothing, so the \
                         hit-rung latency bound was never tested under real overload"
                        .into());
                }
                if !(report.overload_hit_p99_ratio > 0.0 && report.overload_hit_p99_ratio <= max) {
                    return Err(format!(
                        "overload gate failed: hit-rung p99 under 2x load is {:.2}x the \
                         uncontended value (floored at the deadline budget; limit {max:.2}x)",
                        report.overload_hit_p99_ratio
                    ));
                }
            }
            if let Some(min) = require_shard_speedup {
                if report.speedup_shards < min {
                    return Err(format!(
                        "shard-scaling speedup {:.2}x is below the required {min:.2}x \
                         ({} shards behind a router vs. one monolith)",
                        report.speedup_shards, report.shard_count
                    ));
                }
            }
            Ok(())
        }
        "serve" => serve::run_serve(&mut args),
        "shutdown" => {
            let addr = args.require("connect")?;
            args.finish()?;
            let remote = RemoteService::connect_retry(addr.as_str(), CONNECT_TIMEOUT)
                .map_err(|e| format!("cannot connect to {addr}: {e}"))?;
            // The daemon stops accepting, drains every in-flight query and
            // answers with its lifetime metrics before closing.
            let metrics = remote.shutdown();
            println!(
                "skysr-d at {addr} drained and stopped: {} completed, {} executed, \
                 {} cache hits, {} coalesced",
                metrics.completed, metrics.executed, metrics.cache.hits, metrics.coalesced
            );
            Ok(())
        }
        "demo" => {
            args.finish()?;
            eprintln!("generating a small demo city ...");
            let dataset = DatasetSpec::preset(Preset::CalSmall).scale(0.2).seed(1).generate();
            let ctx = dataset.context();
            let w =
                skysr_data::workload::WorkloadSpec::new(3).queries(1).seed(2).generate(&dataset);
            let q = &w.queries[0];
            println!("query from vertex {} through:", q.start);
            for spec in &q.sequence {
                if let skysr_core::PositionSpec::Category(c) = spec {
                    println!("  - {}", dataset.forest.name(*c));
                }
            }
            let routes = Bssr::new(&ctx).run(q).map_err(|e| e.to_string())?.routes;
            print_routes(&dataset, &routes);
            Ok(())
        }
        other => Err(format!("unknown command {other:?}")),
    }
}

fn print_routes(dataset: &Dataset, routes: &[SkylineRoute]) {
    if routes.is_empty() {
        println!("no sequenced route exists for this query");
        return;
    }
    println!("{} skyline route(s):", routes.len());
    for r in routes {
        let labels: Vec<String> = r
            .pois
            .iter()
            .map(|&p| {
                let name = dataset
                    .pois
                    .categories_of(p)
                    .first()
                    .map(|&c| dataset.forest.name(c))
                    .unwrap_or("?");
                format!("{name}@{p}")
            })
            .collect();
        println!(
            "  {:>10.1} m  semantic {:.3}   {}",
            r.length.get(),
            r.semantic,
            labels.join(" -> ")
        );
    }
}
