//! On-the-fly caching of modified-Dijkstra results (Optimisation 4,
//! §5.3.4).
//!
//! BSSR frequently re-runs the modified Dijkstra algorithm from the same
//! PoI vertex for the same position (different queue routes can end at the
//! same PoI). The match set found — which PoIs semantically match, at what
//! distance, with what similarity — depends only on `(source, position)`
//! and the explored radius, *not* on the particular route, so results are
//! memoised per query and re-derived route checks (distinctness,
//! thresholds, lower bounds) are applied at reuse time.
//!
//! **Radius discipline.** A cached entry is complete only up to the radius
//! the original search explored. Thresholds are not monotone across
//! routes (a semantically better route has a *looser* threshold), so a
//! later request may need a larger radius than any earlier one; such
//! requests miss the cache and their re-run replaces the entry. The cache
//! is dropped when the query finishes ("on the fly"), since the search
//! space rarely overlaps across different inputs.

use skysr_graph::fxhash::FxHashMap;
use skysr_graph::{Cost, VertexId};

/// A match found by the modified Dijkstra algorithm.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CachedMatch {
    /// The matching PoI vertex.
    pub vertex: VertexId,
    /// Distance from the search source.
    pub dist: Cost,
    /// Similarity of the PoI to the position.
    pub sim: f64,
}

/// One memoised search result.
#[derive(Clone, Debug)]
pub struct CacheEntry {
    /// Matches in non-decreasing distance order.
    pub matches: Vec<CachedMatch>,
    /// The entry is complete for all matches with `dist <` this radius.
    pub explored_radius: Cost,
}

/// Per-query memo of modified-Dijkstra results.
#[derive(Debug, Default)]
pub struct SearchCache {
    map: FxHashMap<(u32, u8), CacheEntry>,
    hits: u64,
    misses: u64,
}

impl SearchCache {
    /// Empty cache.
    pub fn new() -> SearchCache {
        SearchCache::default()
    }

    /// Returns the cached entry for (`source`, `position`) if it covers
    /// `radius`.
    pub fn lookup(
        &mut self,
        source: VertexId,
        position: usize,
        radius: Cost,
    ) -> Option<&CacheEntry> {
        match self.map.get(&(source.0, position as u8)) {
            Some(e) if e.explored_radius >= radius => {
                self.hits += 1;
                Some(e)
            }
            _ => {
                self.misses += 1;
                None
            }
        }
    }

    /// Stores (or upgrades) the entry for (`source`, `position`). Keeps the
    /// wider of the existing and new entries.
    pub fn insert(
        &mut self,
        source: VertexId,
        position: usize,
        matches: Vec<CachedMatch>,
        explored_radius: Cost,
    ) {
        let key = (source.0, position as u8);
        match self.map.get(&key) {
            Some(existing) if existing.explored_radius >= explored_radius => {}
            _ => {
                self.map.insert(key, CacheEntry { matches, explored_radius });
            }
        }
    }

    /// Number of memoised (source, position) pairs.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// (hits, misses) since construction.
    pub fn stats(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m(v: u32, d: f64, s: f64) -> CachedMatch {
        CachedMatch { vertex: VertexId(v), dist: Cost::new(d), sim: s }
    }

    #[test]
    fn hit_requires_covering_radius() {
        let mut c = SearchCache::new();
        c.insert(VertexId(3), 1, vec![m(5, 2.0, 1.0)], Cost::new(10.0));
        assert!(c.lookup(VertexId(3), 1, Cost::new(5.0)).is_some());
        assert!(c.lookup(VertexId(3), 1, Cost::new(10.0)).is_some());
        // Larger radius than explored → miss.
        assert!(c.lookup(VertexId(3), 1, Cost::new(11.0)).is_none());
        assert_eq!(c.stats(), (2, 1));
    }

    #[test]
    fn different_position_is_different_key() {
        let mut c = SearchCache::new();
        c.insert(VertexId(3), 1, vec![], Cost::INFINITY);
        assert!(c.lookup(VertexId(3), 2, Cost::new(1.0)).is_none());
        assert!(c.lookup(VertexId(4), 1, Cost::new(1.0)).is_none());
    }

    #[test]
    fn insert_keeps_wider_entry() {
        let mut c = SearchCache::new();
        c.insert(VertexId(1), 0, vec![m(5, 2.0, 1.0), m(6, 8.0, 0.5)], Cost::new(10.0));
        // A narrower re-insert must not clobber the wide entry.
        c.insert(VertexId(1), 0, vec![m(5, 2.0, 1.0)], Cost::new(3.0));
        let e = c.lookup(VertexId(1), 0, Cost::new(9.0)).unwrap();
        assert_eq!(e.matches.len(), 2);
        // A wider insert upgrades.
        c.insert(
            VertexId(1),
            0,
            vec![m(5, 2.0, 1.0), m(6, 8.0, 0.5), m(7, 12.0, 1.0)],
            Cost::INFINITY,
        );
        let e = c.lookup(VertexId(1), 0, Cost::new(1e9)).unwrap();
        assert_eq!(e.matches.len(), 3);
    }

    #[test]
    fn infinite_radius_covers_everything() {
        let mut c = SearchCache::new();
        c.insert(VertexId(0), 0, vec![], Cost::INFINITY);
        assert!(c.lookup(VertexId(0), 0, Cost::INFINITY).is_some());
    }
}
